/**
 * @file
 * Unit and property tests for the stream set operations (S_INTER,
 * S_SUB, S_MERGE semantics) and the Fig. 6 SU cost model.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "streams/set_ops.hh"
#include "streams/simd/kernel_table.hh"

using namespace sc;
using namespace sc::streams;

namespace {

std::vector<Key>
sortedRandom(Rng &rng, std::size_t n, Key universe)
{
    std::set<Key> s;
    while (s.size() < n)
        s.insert(static_cast<Key>(rng.below(universe)));
    return {s.begin(), s.end()};
}

} // namespace

TEST(SetOps, IntersectBasic)
{
    const std::vector<Key> a = {1, 3, 5, 7, 9};
    const std::vector<Key> b = {2, 3, 4, 7, 8};
    std::vector<Key> out;
    const auto res = intersect(a, b, noBound, &out);
    EXPECT_EQ(out, (std::vector<Key>{3, 7}));
    EXPECT_EQ(res.count, 2u);
}

TEST(SetOps, IntersectDisjoint)
{
    const std::vector<Key> a = {1, 2, 3};
    const std::vector<Key> b = {10, 20};
    const auto res = intersect(a, b);
    EXPECT_EQ(res.count, 0u);
}

TEST(SetOps, IntersectEmptyOperand)
{
    const std::vector<Key> a = {1, 2, 3};
    EXPECT_EQ(intersect(a, {}).count, 0u);
    EXPECT_EQ(intersect({}, a).count, 0u);
    EXPECT_EQ(intersect({}, {}).count, 0u);
}

TEST(SetOps, IntersectBoundTerminatesEarly)
{
    const std::vector<Key> a = {1, 3, 5, 7, 9};
    const std::vector<Key> b = {3, 5, 7, 9};
    std::vector<Key> out;
    const auto res = intersect(a, b, 6, &out);
    EXPECT_EQ(out, (std::vector<Key>{3, 5}));
    // Early termination: fewer elements consumed than the full walk.
    EXPECT_LT(res.aConsumed, a.size());
}

TEST(SetOps, IntersectBoundAtExactElement)
{
    const std::vector<Key> a = {1, 3, 5};
    const std::vector<Key> b = {1, 3, 5};
    std::vector<Key> out;
    intersect(a, b, 5, &out);
    // The bound is exclusive: 5 must not appear.
    EXPECT_EQ(out, (std::vector<Key>{1, 3}));
}

TEST(SetOps, PaperVinterExample)
{
    // §3.3: keys [(1,45),(3,21),(7,13)] and [(2,14),(5,36),(7,2)]
    // intersect at key 7; MAC gives 13 * 2 = 26.
    const std::vector<Key> ak = {1, 3, 7};
    const std::vector<Value> av = {45, 21, 13};
    const std::vector<Key> bk = {2, 5, 7};
    const std::vector<Value> bv = {14, 36, 2};
    SetOpResult work;
    const Value r =
        valueIntersect(ak, av, bk, bv, ValueOp::Mac, &work);
    EXPECT_DOUBLE_EQ(r, 26.0);
    EXPECT_EQ(work.count, 1u);
}

TEST(SetOps, PaperVmergeExample)
{
    // §3.3: [(1,4),(3,21)] and [(1,1),(5,36)], scales 2 and 3 ->
    // [(1,11),(3,42),(5,108)].
    const std::vector<Key> ak = {1, 3};
    const std::vector<Value> av = {4, 21};
    const std::vector<Key> bk = {1, 5};
    const std::vector<Value> bv = {1, 36};
    std::vector<Key> keys;
    std::vector<Value> vals;
    valueMerge(ak, av, bk, bv, 2.0, 3.0, keys, vals);
    EXPECT_EQ(keys, (std::vector<Key>{1, 3, 5}));
    ASSERT_EQ(vals.size(), 3u);
    EXPECT_DOUBLE_EQ(vals[0], 11.0);
    EXPECT_DOUBLE_EQ(vals[1], 42.0);
    EXPECT_DOUBLE_EQ(vals[2], 108.0);
}

TEST(SetOps, SubtractBasic)
{
    const std::vector<Key> a = {1, 2, 3, 4, 5};
    const std::vector<Key> b = {2, 4, 6};
    std::vector<Key> out;
    subtract(a, b, noBound, &out);
    EXPECT_EQ(out, (std::vector<Key>{1, 3, 5}));
}

TEST(SetOps, SubtractBound)
{
    const std::vector<Key> a = {1, 2, 3, 4, 5};
    const std::vector<Key> b = {2};
    std::vector<Key> out;
    subtract(a, b, 4, &out);
    EXPECT_EQ(out, (std::vector<Key>{1, 3}));
}

TEST(SetOps, MergeBasicWithTail)
{
    const std::vector<Key> a = {1, 5};
    const std::vector<Key> b = {2, 5, 9, 12};
    std::vector<Key> out;
    const auto res = merge(a, b, &out);
    EXPECT_EQ(out, (std::vector<Key>{1, 2, 5, 9, 12}));
    EXPECT_EQ(res.count, 5u);
}

TEST(SetOps, ValueOpsMaxMin)
{
    const std::vector<Key> k = {1, 2, 3};
    const std::vector<Value> av = {2, 5, 1};
    const std::vector<Value> bv = {3, 1, 4};
    EXPECT_DOUBLE_EQ(valueIntersect(k, av, k, bv, ValueOp::MaxAcc),
                     6.0); // max(6, 5, 4)
    EXPECT_DOUBLE_EQ(valueIntersect(k, av, k, bv, ValueOp::MinAcc),
                     4.0); // min(6, 5, 4)
}

TEST(SetOps, StepVisitorSeesEveryStep)
{
    const std::vector<Key> a = {1, 3, 5};
    const std::vector<Key> b = {2, 3, 6};
    unsigned matches = 0, advances = 0;
    const auto res = intersect(a, b, noBound, nullptr,
                               [&](StepOutcome o) {
                                   if (o == StepOutcome::Match)
                                       ++matches;
                                   else
                                       ++advances;
                               });
    EXPECT_EQ(matches, 1u);
    EXPECT_EQ(matches + advances, res.steps);
}

// ---------------- property tests ----------------

class SetOpsProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SetOpsProperty, MatchesStdAlgorithms)
{
    Rng rng(GetParam());
    const auto a = sortedRandom(rng, 20 + rng.below(200), 1000);
    const auto b = sortedRandom(rng, 20 + rng.below(200), 1000);

    std::vector<Key> expect;
    std::vector<Key> got;

    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expect));
    intersect(a, b, noBound, &got);
    EXPECT_EQ(got, expect);

    expect.clear();
    got.clear();
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(expect));
    subtract(a, b, noBound, &got);
    EXPECT_EQ(got, expect);

    expect.clear();
    got.clear();
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(expect));
    merge(a, b, &got);
    EXPECT_EQ(got, expect);
}

TEST_P(SetOpsProperty, BoundEquivalentToFilter)
{
    Rng rng(GetParam() ^ 0xb0d);
    const auto a = sortedRandom(rng, 10 + rng.below(100), 500);
    const auto b = sortedRandom(rng, 10 + rng.below(100), 500);
    const Key bound = static_cast<Key>(rng.below(500));

    std::vector<Key> full, bounded;
    intersect(a, b, noBound, &full);
    intersect(a, b, bound, &bounded);
    std::vector<Key> filtered;
    for (Key k : full)
        if (k < bound)
            filtered.push_back(k);
    EXPECT_EQ(bounded, filtered);

    full.clear();
    bounded.clear();
    filtered.clear();
    subtract(a, b, noBound, &full);
    subtract(a, b, bound, &bounded);
    for (Key k : full)
        if (k < bound)
            filtered.push_back(k);
    EXPECT_EQ(bounded, filtered);
}

TEST_P(SetOpsProperty, SuCostBoundsAndMonotonicity)
{
    Rng rng(GetParam() ^ 0x5c057);
    const auto a = sortedRandom(rng, 10 + rng.below(300), 2000);
    const auto b = sortedRandom(rng, 10 + rng.below(300), 2000);

    for (auto kind : {SetOpKind::Intersect, SetOpKind::Subtract,
                      SetOpKind::Merge}) {
        const auto narrow = suCost(a, b, kind, noBound, 4);
        const auto wide = suCost(a, b, kind, noBound, 32);
        // Wider comparators can only help.
        EXPECT_LE(wide.cycles, narrow.cycles);
        // A width-1 window degenerates to the scalar walk: the cycle
        // count can never exceed the total element count.
        const auto scalar = suCost(a, b, kind, noBound, 1);
        EXPECT_LE(scalar.cycles, a.size() + b.size() + 2);
        // Consumed counts never exceed operand lengths.
        EXPECT_LE(wide.aConsumed, a.size());
        EXPECT_LE(wide.bConsumed, b.size());
    }
}

TEST_P(SetOpsProperty, SuCostBoundedNeverSlower)
{
    Rng rng(GetParam() ^ 0xfeed);
    const auto a = sortedRandom(rng, 10 + rng.below(300), 2000);
    const auto b = sortedRandom(rng, 10 + rng.below(300), 2000);
    const Key bound = static_cast<Key>(rng.below(2000));
    for (auto kind : {SetOpKind::Intersect, SetOpKind::Subtract}) {
        const auto bounded = suCost(a, b, kind, bound, 16);
        const auto full = suCost(a, b, kind, noBound, 16);
        EXPECT_LE(bounded.cycles, full.cycles)
            << setOpName(kind) << " bound " << bound;
    }
}

namespace {

/** Two-pointer reference for valueIntersect (no galloping). */
Value
valueIntersectReference(KeySpan ak, ValueSpan av, KeySpan bk,
                        ValueSpan bv, ValueOp op, SetOpResult *work,
                        std::vector<std::uint32_t> *pos_a,
                        std::vector<std::uint32_t> *pos_b)
{
    Value acc = 0.0;
    bool first = true;
    std::size_t i = 0, j = 0;
    SetOpResult res;
    while (i < ak.size() && j < bk.size()) {
        ++res.steps;
        if (ak[i] == bk[j]) {
            if (pos_a)
                pos_a->push_back(static_cast<std::uint32_t>(i));
            if (pos_b)
                pos_b->push_back(static_cast<std::uint32_t>(j));
            const Value product = av[i] * bv[j];
            switch (op) {
              case ValueOp::Mac:
                acc += product;
                break;
              case ValueOp::MaxAcc:
                acc = first ? product : std::max(acc, product);
                break;
              case ValueOp::MinAcc:
                acc = first ? product : std::min(acc, product);
                break;
            }
            first = false;
            ++res.count;
            ++i;
            ++j;
        } else if (ak[i] < bk[j]) {
            ++i;
        } else {
            ++j;
        }
    }
    res.aConsumed = i;
    res.bConsumed = j;
    if (work)
        *work = res;
    return acc;
}

/** Windowed-skip reference for suCost (no galloping, linear tail). */
SuCost
suCostReference(KeySpan a, KeySpan b, SetOpKind kind, Key bound,
                unsigned width)
{
    Cycles cycles = 0;
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        const Key ka = a[i], kb = b[j];
        if (kind != SetOpKind::Merge && (ka >= bound || kb >= bound))
            break;
        ++cycles;
        if (ka == kb) {
            ++i;
            ++j;
            continue;
        }
        if (ka < kb) {
            const std::size_t limit = std::min(a.size(), i + width);
            auto it = std::lower_bound(a.begin() + i,
                                       a.begin() + limit, kb);
            i = static_cast<std::size_t>(it - a.begin());
        } else {
            const std::size_t limit = std::min(b.size(), j + width);
            auto it = std::lower_bound(b.begin() + j,
                                       b.begin() + limit, ka);
            j = static_cast<std::size_t>(it - b.begin());
        }
    }
    if (kind == SetOpKind::Merge) {
        const std::size_t left = (a.size() - i) + (b.size() - j);
        cycles += (left + width - 1) / width;
        i = a.size();
        j = b.size();
    } else if (kind == SetOpKind::Subtract) {
        std::size_t left = 0;
        for (std::size_t k = i; k < a.size() && a[k] < bound; ++k)
            ++left;
        cycles += (left + width - 1) / width;
        i += left;
    }
    return SuCost{cycles, i, j};
}

std::vector<Value>
randomValues(Rng &rng, std::size_t n)
{
    std::vector<Value> v(n);
    for (auto &x : v)
        x = static_cast<Value>(rng.below(1000)) / 10.0 + 0.5;
    return v;
}

} // namespace

TEST_P(SetOpsProperty, GallopingValueIntersectMatchesReference)
{
    Rng rng(GetParam() ^ 0x9a110);
    // Skewed operands: the short side is >= 32x shorter, so the
    // galloping fast path engages. Also mix in a balanced pair where
    // it must not change anything.
    const struct
    {
        std::size_t na, nb;
    } shapes[] = {{5, 400}, {12, 3000}, {300, 9600}, {64, 64}};
    for (const auto &shape : shapes) {
        const auto ak = sortedRandom(rng, shape.na, 10'000);
        const auto bk = sortedRandom(rng, shape.nb, 10'000);
        const auto av = randomValues(rng, ak.size());
        const auto bv = randomValues(rng, bk.size());
        for (auto op :
             {ValueOp::Mac, ValueOp::MaxAcc, ValueOp::MinAcc}) {
            SetOpResult work, ref_work;
            std::vector<std::uint32_t> pa, pb, ref_pa, ref_pb;
            const Value got = valueIntersect(ak, av, bk, bv, op,
                                             &work, &pa, &pb);
            const Value want = valueIntersectReference(
                ak, av, bk, bv, op, &ref_work, &ref_pa, &ref_pb);
            EXPECT_EQ(got, want);
            EXPECT_EQ(work.count, ref_work.count);
            EXPECT_EQ(work.steps, ref_work.steps);
            EXPECT_EQ(work.aConsumed, ref_work.aConsumed);
            EXPECT_EQ(work.bConsumed, ref_work.bConsumed);
            EXPECT_EQ(pa, ref_pa);
            EXPECT_EQ(pb, ref_pb);
        }
    }
}

TEST_P(SetOpsProperty, GallopingSuCostMatchesReference)
{
    Rng rng(GetParam() ^ 0x5ca10);
    const struct
    {
        std::size_t na, nb;
    } shapes[] = {{4, 500}, {2000, 30}, {10, 2048}, {128, 96}};
    for (const auto &shape : shapes) {
        const auto a = sortedRandom(rng, shape.na, 20'000);
        const auto b = sortedRandom(rng, shape.nb, 20'000);
        const Key bounds[] = {noBound,
                              static_cast<Key>(rng.below(20'000)),
                              static_cast<Key>(rng.below(500))};
        for (auto kind : {SetOpKind::Intersect, SetOpKind::Subtract,
                          SetOpKind::Merge}) {
            for (Key bound : bounds) {
                for (unsigned width : {1u, 4u, 16u}) {
                    const auto got =
                        suCost(a, b, kind, bound, width);
                    const auto want =
                        suCostReference(a, b, kind, bound, width);
                    EXPECT_EQ(got.cycles, want.cycles)
                        << setOpName(kind) << " bound " << bound
                        << " width " << width;
                    EXPECT_EQ(got.aConsumed, want.aConsumed);
                    EXPECT_EQ(got.bConsumed, want.bConsumed);
                }
            }
        }
    }
}

TEST_P(SetOpsProperty, BoundedGallopAtExactBoundary)
{
    // R3 early termination ON the galloping fast paths: operands with
    // >= 32x skew (the simdGallopRatio threshold) and bounds placed
    // exactly at element keys, one past them, at the short side's last
    // key, and one past it — the positions where an off-by-one in
    // bound trimming vs. gallop termination would show. Checked for
    // both skew directions against the scalar templates, through every
    // dispatched kernel level and through suCost.
    Rng rng(GetParam() ^ 0xb0907);
    const auto small = sortedRandom(rng, 12, 50'000);
    const auto large = sortedRandom(rng, 12 * 40, 50'000);
    ASSERT_GE(large.size(), 32 * small.size());

    std::vector<Key> bounds = {noBound, 0};
    for (const Key k : small) {
        bounds.push_back(k);
        bounds.push_back(k + 1);
    }
    bounds.push_back(small.back());
    bounds.push_back(small.back() + 1);
    bounds.push_back(large[large.size() / 2]);
    bounds.push_back(large.back() + 1);

    const std::pair<KeySpan, KeySpan> orients[] = {{small, large},
                                                   {large, small}};
    for (const auto &[a, b] : orients) {
        for (const Key bound : bounds) {
            for (auto kind :
                 {SetOpKind::Intersect, SetOpKind::Subtract}) {
                std::vector<Key> ref_out;
                const SetOpResult ref =
                    kind == SetOpKind::Intersect
                        ? intersect(a, b, bound, &ref_out)
                        : subtract(a, b, bound, &ref_out);
                for (const KernelLevel level :
                     availableKernelLevels()) {
                    ScopedKernelOverride forced(level);
                    const std::string what =
                        std::string(setOpName(kind)) + " level=" +
                        kernelLevelName(level) + " bound=" +
                        std::to_string(bound) + " |a|=" +
                        std::to_string(a.size());
                    std::vector<Key> out;
                    const SetOpResult got =
                        runSetOp(kind, a, b, bound, &out);
                    EXPECT_EQ(out, ref_out) << what;
                    EXPECT_EQ(got.count, ref.count) << what;
                    EXPECT_EQ(got.steps, ref.steps) << what;
                    EXPECT_EQ(got.aConsumed, ref.aConsumed) << what;
                    EXPECT_EQ(got.bConsumed, ref.bConsumed) << what;
                    const SetOpResult cnt =
                        runSetOpCount(kind, a, b, bound);
                    EXPECT_EQ(cnt.count, ref.count) << what << " (.C)";
                    EXPECT_EQ(cnt.steps, ref.steps) << what << " (.C)";
                }
                // The SU cost model's galloping fast path must agree
                // with the windowed-skip reference at the same
                // boundary bounds.
                for (unsigned width : {1u, 16u}) {
                    const auto got = suCost(a, b, kind, bound, width);
                    const auto want =
                        suCostReference(a, b, kind, bound, width);
                    EXPECT_EQ(got.cycles, want.cycles)
                        << setOpName(kind) << " bound " << bound
                        << " width " << width;
                    EXPECT_EQ(got.aConsumed, want.aConsumed);
                    EXPECT_EQ(got.bConsumed, want.bConsumed);
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetOpsProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));
