/**
 * @file
 * Unit and property tests for the stream set operations (S_INTER,
 * S_SUB, S_MERGE semantics) and the Fig. 6 SU cost model.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hh"
#include "streams/set_ops.hh"

using namespace sc;
using namespace sc::streams;

namespace {

std::vector<Key>
sortedRandom(Rng &rng, std::size_t n, Key universe)
{
    std::set<Key> s;
    while (s.size() < n)
        s.insert(static_cast<Key>(rng.below(universe)));
    return {s.begin(), s.end()};
}

} // namespace

TEST(SetOps, IntersectBasic)
{
    const std::vector<Key> a = {1, 3, 5, 7, 9};
    const std::vector<Key> b = {2, 3, 4, 7, 8};
    std::vector<Key> out;
    const auto res = intersect(a, b, noBound, &out);
    EXPECT_EQ(out, (std::vector<Key>{3, 7}));
    EXPECT_EQ(res.count, 2u);
}

TEST(SetOps, IntersectDisjoint)
{
    const std::vector<Key> a = {1, 2, 3};
    const std::vector<Key> b = {10, 20};
    const auto res = intersect(a, b);
    EXPECT_EQ(res.count, 0u);
}

TEST(SetOps, IntersectEmptyOperand)
{
    const std::vector<Key> a = {1, 2, 3};
    EXPECT_EQ(intersect(a, {}).count, 0u);
    EXPECT_EQ(intersect({}, a).count, 0u);
    EXPECT_EQ(intersect({}, {}).count, 0u);
}

TEST(SetOps, IntersectBoundTerminatesEarly)
{
    const std::vector<Key> a = {1, 3, 5, 7, 9};
    const std::vector<Key> b = {3, 5, 7, 9};
    std::vector<Key> out;
    const auto res = intersect(a, b, 6, &out);
    EXPECT_EQ(out, (std::vector<Key>{3, 5}));
    // Early termination: fewer elements consumed than the full walk.
    EXPECT_LT(res.aConsumed, a.size());
}

TEST(SetOps, IntersectBoundAtExactElement)
{
    const std::vector<Key> a = {1, 3, 5};
    const std::vector<Key> b = {1, 3, 5};
    std::vector<Key> out;
    intersect(a, b, 5, &out);
    // The bound is exclusive: 5 must not appear.
    EXPECT_EQ(out, (std::vector<Key>{1, 3}));
}

TEST(SetOps, PaperVinterExample)
{
    // §3.3: keys [(1,45),(3,21),(7,13)] and [(2,14),(5,36),(7,2)]
    // intersect at key 7; MAC gives 13 * 2 = 26.
    const std::vector<Key> ak = {1, 3, 7};
    const std::vector<Value> av = {45, 21, 13};
    const std::vector<Key> bk = {2, 5, 7};
    const std::vector<Value> bv = {14, 36, 2};
    SetOpResult work;
    const Value r =
        valueIntersect(ak, av, bk, bv, ValueOp::Mac, &work);
    EXPECT_DOUBLE_EQ(r, 26.0);
    EXPECT_EQ(work.count, 1u);
}

TEST(SetOps, PaperVmergeExample)
{
    // §3.3: [(1,4),(3,21)] and [(1,1),(5,36)], scales 2 and 3 ->
    // [(1,11),(3,42),(5,108)].
    const std::vector<Key> ak = {1, 3};
    const std::vector<Value> av = {4, 21};
    const std::vector<Key> bk = {1, 5};
    const std::vector<Value> bv = {1, 36};
    std::vector<Key> keys;
    std::vector<Value> vals;
    valueMerge(ak, av, bk, bv, 2.0, 3.0, keys, vals);
    EXPECT_EQ(keys, (std::vector<Key>{1, 3, 5}));
    ASSERT_EQ(vals.size(), 3u);
    EXPECT_DOUBLE_EQ(vals[0], 11.0);
    EXPECT_DOUBLE_EQ(vals[1], 42.0);
    EXPECT_DOUBLE_EQ(vals[2], 108.0);
}

TEST(SetOps, SubtractBasic)
{
    const std::vector<Key> a = {1, 2, 3, 4, 5};
    const std::vector<Key> b = {2, 4, 6};
    std::vector<Key> out;
    subtract(a, b, noBound, &out);
    EXPECT_EQ(out, (std::vector<Key>{1, 3, 5}));
}

TEST(SetOps, SubtractBound)
{
    const std::vector<Key> a = {1, 2, 3, 4, 5};
    const std::vector<Key> b = {2};
    std::vector<Key> out;
    subtract(a, b, 4, &out);
    EXPECT_EQ(out, (std::vector<Key>{1, 3}));
}

TEST(SetOps, MergeBasicWithTail)
{
    const std::vector<Key> a = {1, 5};
    const std::vector<Key> b = {2, 5, 9, 12};
    std::vector<Key> out;
    const auto res = merge(a, b, &out);
    EXPECT_EQ(out, (std::vector<Key>{1, 2, 5, 9, 12}));
    EXPECT_EQ(res.count, 5u);
}

TEST(SetOps, ValueOpsMaxMin)
{
    const std::vector<Key> k = {1, 2, 3};
    const std::vector<Value> av = {2, 5, 1};
    const std::vector<Value> bv = {3, 1, 4};
    EXPECT_DOUBLE_EQ(valueIntersect(k, av, k, bv, ValueOp::MaxAcc),
                     6.0); // max(6, 5, 4)
    EXPECT_DOUBLE_EQ(valueIntersect(k, av, k, bv, ValueOp::MinAcc),
                     4.0); // min(6, 5, 4)
}

TEST(SetOps, StepVisitorSeesEveryStep)
{
    const std::vector<Key> a = {1, 3, 5};
    const std::vector<Key> b = {2, 3, 6};
    unsigned matches = 0, advances = 0;
    const auto res = intersect(a, b, noBound, nullptr,
                               [&](StepOutcome o) {
                                   if (o == StepOutcome::Match)
                                       ++matches;
                                   else
                                       ++advances;
                               });
    EXPECT_EQ(matches, 1u);
    EXPECT_EQ(matches + advances, res.steps);
}

// ---------------- property tests ----------------

class SetOpsProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SetOpsProperty, MatchesStdAlgorithms)
{
    Rng rng(GetParam());
    const auto a = sortedRandom(rng, 20 + rng.below(200), 1000);
    const auto b = sortedRandom(rng, 20 + rng.below(200), 1000);

    std::vector<Key> expect;
    std::vector<Key> got;

    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expect));
    intersect(a, b, noBound, &got);
    EXPECT_EQ(got, expect);

    expect.clear();
    got.clear();
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(expect));
    subtract(a, b, noBound, &got);
    EXPECT_EQ(got, expect);

    expect.clear();
    got.clear();
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(expect));
    merge(a, b, &got);
    EXPECT_EQ(got, expect);
}

TEST_P(SetOpsProperty, BoundEquivalentToFilter)
{
    Rng rng(GetParam() ^ 0xb0d);
    const auto a = sortedRandom(rng, 10 + rng.below(100), 500);
    const auto b = sortedRandom(rng, 10 + rng.below(100), 500);
    const Key bound = static_cast<Key>(rng.below(500));

    std::vector<Key> full, bounded;
    intersect(a, b, noBound, &full);
    intersect(a, b, bound, &bounded);
    std::vector<Key> filtered;
    for (Key k : full)
        if (k < bound)
            filtered.push_back(k);
    EXPECT_EQ(bounded, filtered);

    full.clear();
    bounded.clear();
    filtered.clear();
    subtract(a, b, noBound, &full);
    subtract(a, b, bound, &bounded);
    for (Key k : full)
        if (k < bound)
            filtered.push_back(k);
    EXPECT_EQ(bounded, filtered);
}

TEST_P(SetOpsProperty, SuCostBoundsAndMonotonicity)
{
    Rng rng(GetParam() ^ 0x5c057);
    const auto a = sortedRandom(rng, 10 + rng.below(300), 2000);
    const auto b = sortedRandom(rng, 10 + rng.below(300), 2000);

    for (auto kind : {SetOpKind::Intersect, SetOpKind::Subtract,
                      SetOpKind::Merge}) {
        const auto narrow = suCost(a, b, kind, noBound, 4);
        const auto wide = suCost(a, b, kind, noBound, 32);
        // Wider comparators can only help.
        EXPECT_LE(wide.cycles, narrow.cycles);
        // A width-1 window degenerates to the scalar walk: the cycle
        // count can never exceed the total element count.
        const auto scalar = suCost(a, b, kind, noBound, 1);
        EXPECT_LE(scalar.cycles, a.size() + b.size() + 2);
        // Consumed counts never exceed operand lengths.
        EXPECT_LE(wide.aConsumed, a.size());
        EXPECT_LE(wide.bConsumed, b.size());
    }
}

TEST_P(SetOpsProperty, SuCostBoundedNeverSlower)
{
    Rng rng(GetParam() ^ 0xfeed);
    const auto a = sortedRandom(rng, 10 + rng.below(300), 2000);
    const auto b = sortedRandom(rng, 10 + rng.below(300), 2000);
    const Key bound = static_cast<Key>(rng.below(2000));
    for (auto kind : {SetOpKind::Intersect, SetOpKind::Subtract}) {
        const auto bounded = suCost(a, b, kind, bound, 16);
        const auto full = suCost(a, b, kind, noBound, 16);
        EXPECT_LE(bounded.cycles, full.cycles)
            << setOpName(kind) << " bound " << bound;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetOpsProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));
