/**
 * @file
 * Tests for frequent subgraph mining: MNI support semantics,
 * anti-monotone pruning, backend agreement and the paper's
 * "FSM speedups are small" property.
 */

#include <gtest/gtest.h>

#include "backend/cpu_backend.hh"
#include "backend/functional_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "graph/graph_builder.hh"
#include "gpm/apps.hh"
#include "gpm/executor.hh"
#include "gpm/fsm.hh"
#include "test_util.hh"

using namespace sc;
using namespace sc::gpm;
using graph::Label;
using graph::LabeledGraph;

namespace {

/** A labeled path 0-1-2-3 with labels a,b,b,a. */
LabeledGraph
labeledPath()
{
    auto g = graph::buildCsr(4, {{0, 1}, {1, 2}, {2, 3}}, "path");
    return LabeledGraph(std::move(g), {0, 1, 1, 0});
}

} // namespace

TEST(Fsm, SingleEdgeSupport)
{
    // Path a-b-b-a: edges (a,b) x2 and (b,b) x1.
    // MNI((a,b)): a-side {0,3}, b-side {1,2} -> support 2.
    // MNI((b,b)): both positions {1,2} -> support 2.
    backend::FunctionalBackend be;
    const auto r1 = runFsm(labeledPath(), be, 2);
    EXPECT_EQ(r1.frequentEdges, 2u);
    const auto r3 = runFsm(labeledPath(), be, 3);
    EXPECT_EQ(r3.frequentEdges, 0u);
}

TEST(Fsm, WedgeSupportOnStar)
{
    // Star with center label 9 and 4 leaves label 1: wedges
    // (1,9,1): center set {0}, leaf sets {1..4}: support 1.
    auto g = graph::buildCsr(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}},
                             "star");
    LabeledGraph lg(std::move(g), {9, 1, 1, 1, 1});
    backend::FunctionalBackend be;
    const auto r = runFsm(lg, be, 1);
    EXPECT_EQ(r.frequentWedges, 1u);
    // Support 2 kills the wedge (center set has one vertex).
    const auto r2 = runFsm(lg, be, 2);
    EXPECT_EQ(r2.frequentWedges, 0u);
}

TEST(Fsm, TriangleDetected)
{
    auto g = graph::buildCsr(3, {{0, 1}, {1, 2}, {0, 2}}, "k3");
    LabeledGraph lg(std::move(g), {0, 0, 0});
    backend::FunctionalBackend be;
    const auto r = runFsm(lg, be, 1);
    EXPECT_EQ(r.frequentTriangles, 1u);
    EXPECT_EQ(r.frequentEdges, 1u);
}

TEST(Fsm, AntiMonotonePruning)
{
    // Total frequent patterns can only shrink as support rises.
    const auto &g = test::randomTestGraph(200, 1200, 81);
    LabeledGraph lg =
        LabeledGraph::withRandomLabels(graph::CsrGraph(g), 3, 82);
    backend::FunctionalBackend be;
    unsigned prev = ~0u;
    for (std::uint64_t support : {2, 5, 10, 30}) {
        const auto r = runFsm(lg, be, support);
        EXPECT_LE(r.totalFrequent(), prev);
        prev = r.totalFrequent();
    }
}

TEST(Fsm, BackendsAgree)
{
    const auto &g = test::randomTestGraph(150, 900, 83);
    LabeledGraph lg =
        LabeledGraph::withRandomLabels(graph::CsrGraph(g), 4, 84);
    backend::FunctionalBackend functional;
    backend::CpuBackend cpu;
    backend::SparseCoreBackend sc_be;
    const auto f = runFsm(lg, functional, 5);
    const auto c = runFsm(lg, cpu, 5);
    const auto s = runFsm(lg, sc_be, 5);
    EXPECT_EQ(f.totalFrequent(), c.totalFrequent());
    EXPECT_EQ(f.totalFrequent(), s.totalFrequent());
    EXPECT_EQ(f.frequentPaths, s.frequentPaths);
    EXPECT_EQ(f.frequentStars, s.frequentStars);
}

TEST(Fsm, SpeedupSmallerThanTriangleCounting)
{
    // §6.3.2: support computation dominates FSM, so SparseCore's
    // speedup is much smaller than on intersection-heavy apps.
    const auto &g = test::randomTestGraph(250, 2500, 85);
    LabeledGraph lg =
        LabeledGraph::withRandomLabels(graph::CsrGraph(g), 4, 86);

    backend::CpuBackend cpu;
    backend::SparseCoreBackend sc_be;
    const auto fsm_cpu = runFsm(lg, cpu, 5);
    const auto fsm_sc = runFsm(lg, sc_be, 5);
    const double fsm_speedup =
        static_cast<double>(fsm_cpu.cycles) /
        static_cast<double>(fsm_sc.cycles);
    EXPECT_GT(fsm_speedup, 0.8); // not slower

    backend::CpuBackend cpu2;
    backend::SparseCoreBackend sc2;
    gpm::PlanExecutor e_cpu(lg.graph(), cpu2);
    gpm::PlanExecutor e_sc(lg.graph(), sc2);
    const auto t_cpu = e_cpu.runMany(gpmAppPlans(GpmApp::T));
    const auto t_sc = e_sc.runMany(gpmAppPlans(GpmApp::T));
    const double t_speedup = static_cast<double>(t_cpu.cycles) /
                             static_cast<double>(t_sc.cycles);
    EXPECT_LT(fsm_speedup, t_speedup);
}
