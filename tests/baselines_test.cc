/**
 * @file
 * Tests for the competitor models: FlexMiner, TrieJax, GRAMER, the
 * GPU model, and the tensor accelerators. These check the *ordering*
 * relationships the paper reports (SparseCore > FlexMiner > TrieJax;
 * GRAMER slower than CPU; accelerators beat SparseCore per-dataflow)
 * plus internal model behaviours.
 */

#include <gtest/gtest.h>

#include "backend/cpu_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "baselines/flexminer.hh"
#include "baselines/gpu_model.hh"
#include "baselines/gramer.hh"
#include "baselines/tensor_accels.hh"
#include "baselines/triejax.hh"
#include "gpm/apps.hh"
#include "gpm/executor.hh"
#include "kernels/spmspm.hh"
#include "tensor/tensor_gen.hh"
#include "test_util.hh"

using namespace sc;
using namespace sc::gpm;
using namespace sc::baselines;

namespace {

GpmRunResult
runOn(backend::ExecBackend &be, GpmApp app, const graph::CsrGraph &g)
{
    PlanExecutor executor(g, be);
    return executor.runMany(gpmAppPlans(app));
}

} // namespace

TEST(FlexMiner, SameAlgorithmSameCounts)
{
    const auto g = test::randomTestGraph(80, 500, 61);
    FlexMinerBackend fm;
    backend::SparseCoreBackend sc_be;
    EXPECT_EQ(runOn(fm, GpmApp::T, g).embeddings,
              runOn(sc_be, GpmApp::T, g).embeddings);
}

TEST(FlexMiner, SparseCoreWinsButNotAbsurdly)
{
    // §6.3.1: SparseCore outperforms FlexMiner ~2.7x on average
    // (parallel comparison vs serial probing), up to 14.8x.
    const auto g = test::randomTestGraph(300, 6000, 62);
    FlexMinerBackend fm;
    backend::SparseCoreBackend sc_be;
    arch::SparseCoreConfig one_su;
    one_su.numSus = 1; // the paper's fair comparison
    backend::SparseCoreBackend sc_one(one_su);

    const auto fm_res = runOn(fm, GpmApp::T, g);
    const auto sc_res = runOn(sc_one, GpmApp::T, g);
    const double speedup = static_cast<double>(fm_res.cycles) /
                           static_cast<double>(sc_res.cycles);
    EXPECT_GT(speedup, 1.0);
    EXPECT_LT(speedup, 40.0);
}

TEST(FlexMiner, CmapReuseAcrossSubtree)
{
    // Repeated intersections against the same anchor must amortize
    // the build: second run with the same anchor is cheaper.
    FlexMinerBackend fm;
    fm.begin();
    std::vector<Key> anchor(256), probe(64);
    for (std::size_t i = 0; i < anchor.size(); ++i)
        anchor[i] = static_cast<Key>(2 * i);
    for (std::size_t i = 0; i < probe.size(); ++i)
        probe[i] = static_cast<Key>(3 * i);
    auto ha = fm.streamLoad(0x1000, anchor.size(), 0, anchor);
    auto hb = fm.streamLoad(0x9000, probe.size(), 0, probe);
    fm.setOpCount(streams::SetOpKind::Intersect, ha, hb, anchor, probe,
                  noBound, 0);
    const Cycles first = fm.finish();
    fm.setOpCount(streams::SetOpKind::Intersect, ha, hb, anchor, probe,
                  noBound, 0);
    const Cycles second = fm.finish() - first;
    EXPECT_LT(second, first);
}

TEST(TrieJax, RedundancyScalesWork)
{
    const auto g = test::randomTestGraph(100, 800, 63);
    TrieJaxBackend tj6(6, g.numEdgeSlots());
    TrieJaxBackend tj120(120, g.numEdgeSlots());
    const auto r6 = runOn(tj6, GpmApp::T, g);
    const auto r120 = runOn(tj120, GpmApp::T, g);
    // 20x the redundancy must cost an order of magnitude more.
    EXPECT_GT(r120.cycles, 10 * r6.cycles);
}

TEST(TrieJax, OrdersOfMagnitudeSlowerThanSparseCore)
{
    // §6.3.1: thousands of times slower on triangle counting.
    const auto g = test::randomTestGraph(300, 6000, 64);
    TrieJaxBackend tj(6, g.numEdgeSlots());
    arch::SparseCoreConfig one_su;
    one_su.numSus = 1;
    backend::SparseCoreBackend sc_one(one_su);
    const auto tj_res = runOn(tj, GpmApp::T, g);
    const auto sc_res = runOn(sc_one, GpmApp::T, g);
    EXPECT_GT(tj_res.cycles, 20 * sc_res.cycles);
}

TEST(Gramer, SlowerThanCpuBaseline)
{
    // §6.3.1: GRAMER's pattern-oblivious exploration is slower than
    // the CPU baseline.
    const auto g = test::randomTestGraph(200, 3000, 65);
    backend::CpuBackend cpu;
    const auto cpu_res = runOn(cpu, GpmApp::T, g);
    const auto gramer = estimateGramer(g, 3);
    EXPECT_GT(gramer.cycles, cpu_res.cycles);
    EXPECT_GT(gramer.candidateSubgraphs,
              static_cast<double>(g.numEdges()));
}

TEST(Gramer, DeeperPatternsExplodeCandidates)
{
    const auto g = test::randomTestGraph(200, 3000, 66);
    const auto g3 = estimateGramer(g, 3);
    const auto g4 = estimateGramer(g, 4);
    const auto g5 = estimateGramer(g, 5);
    EXPECT_GT(g4.candidateSubgraphs, g3.candidateSubgraphs);
    EXPECT_GT(g5.candidateSubgraphs, g4.candidateSubgraphs);
    EXPECT_THROW(estimateGramer(g, 9), SimError);
}

TEST(GpuModel, SparseCoreOrdersOfMagnitudeFaster)
{
    // Fig. 11 is log scale with speedups of 10^2 - 10^3.
    const auto g = test::randomTestGraph(300, 6000, 67);
    GpuBackend gpu(true, 6);
    backend::SparseCoreBackend sc_be;
    const auto gpu_res = runOn(gpu, GpmApp::T, g);
    const auto sc_res = runOn(sc_be, GpmApp::T, g);
    const double speedup = static_cast<double>(gpu_res.cycles) /
                           static_cast<double>(sc_res.cycles);
    EXPECT_GT(speedup, 20.0);
    EXPECT_LT(speedup, 30000.0);
}

TEST(GpuModel, SymmetryBreakingWinsOnGpuToo)
{
    // §6.5: redundant enumeration with fewer branches cannot beat
    // symmetry breaking.
    const auto g = test::randomTestGraph(300, 6000, 68);
    GpuBackend with(true, 6);
    GpuBackend without(false, 6);
    const auto w = runOn(with, GpmApp::T, g);
    const auto wo = runOn(without, GpmApp::T, g);
    EXPECT_LT(w.cycles, wo.cycles);
}

TEST(TensorAccels, SpecializedBeatSparseCorePerDataflow)
{
    // §6.9.2: accelerators beat SparseCore on their own dataflow
    // (5.2x inner, 3.1x outer, 2.4x Gustavson) but not by orders of
    // magnitude.
    using kernels::SpmspmAlgorithm;
    const auto a = tensor::generateMatrix(
        200, 200, 3000, tensor::MatrixStructure::Uniform, 71, "A");
    const auto b = tensor::generateMatrix(
        200, 200, 3000, tensor::MatrixStructure::Uniform, 72, "B");

    arch::SparseCoreConfig one_su;
    one_su.numSus = 1;

    backend::SparseCoreBackend sc_inner(one_su);
    const auto sc_i =
        kernels::runSpmspm(a, b, SpmspmAlgorithm::Inner, sc_inner);
    const auto ext = extensorSpmspm(a, b);
    EXPECT_LT(ext.cycles, sc_i.cycles);
    EXPECT_GT(ext.cycles * 50, sc_i.cycles);

    backend::SparseCoreBackend sc_outer(one_su);
    const auto sc_o =
        kernels::runSpmspm(a, b, SpmspmAlgorithm::Outer, sc_outer);
    const auto osp = outerspaceSpmspm(a, b);
    EXPECT_LT(osp.cycles, sc_o.cycles);

    backend::SparseCoreBackend sc_gus(one_su);
    const auto sc_g = kernels::runSpmspm(
        a, b, SpmspmAlgorithm::Gustavson, sc_gus);
    const auto gamma = gammaSpmspm(a, b);
    EXPECT_LT(gamma.cycles, sc_g.cycles);
}

TEST(TensorAccels, ShapeChecks)
{
    const auto a = tensor::generateMatrix(
        10, 20, 30, tensor::MatrixStructure::Uniform, 1, "A");
    EXPECT_THROW(extensorSpmspm(a, a), SimError);
    EXPECT_THROW(outerspaceSpmspm(a, a), SimError);
    EXPECT_THROW(gammaSpmspm(a, a), SimError);
}
