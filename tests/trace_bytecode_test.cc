/**
 * @file
 * Tests for the compiled-trace bytecode: compile/decode is an exact
 * round trip (including randomized traces that force wide operands,
 * sentinel handles and explicit result ids), replayed cycles are
 * bit-identical between the event walker and the bytecode loops for
 * every GPM app and tensor kernel on both timing substrates, the SCBC
 * image is byte-stable and validated on load, and the api paths
 * (Machine::compare / compareParallelGpm) agree across replay modes.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <vector>

#include "api/machine.hh"
#include "api/parallel.hh"
#include "backend/cpu_backend.hh"
#include "backend/functional_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "gpm/executor.hh"
#include "gpm/fsm.hh"
#include "kernels/spmspm.hh"
#include "kernels/ttm.hh"
#include "kernels/ttv.hh"
#include "tensor/tensor_gen.hh"
#include "test_util.hh"
#include "trace/bytecode.hh"
#include "trace/compile.hh"
#include "trace/recorder.hh"
#include "trace/replay.hh"

using namespace sc;

namespace {

trace::Trace
captureGpm(const graph::CsrGraph &g, gpm::GpmApp app)
{
    trace::TraceRecorder recorder;
    gpm::PlanExecutor executor(g, recorder);
    executor.runMany(gpm::gpmAppPlans(app));
    return recorder.takeTrace();
}

bool
sameSpan(const trace::SpanRef &a, const trace::SpanRef &b)
{
    return a.off == b.off && a.len == b.len;
}

/** Field-by-field event equality (spans by arena reference). */
void
expectSameEvents(const std::vector<trace::Event> &decoded,
                 const std::vector<trace::Event> &source,
                 const char *label)
{
    ASSERT_EQ(decoded.size(), source.size()) << label;
    for (std::size_t i = 0; i < source.size(); ++i) {
        const trace::Event &d = decoded[i];
        const trace::Event &s = source[i];
        EXPECT_EQ(d.kind, s.kind) << label << " event " << i;
        EXPECT_EQ(d.aux, s.aux) << label << " event " << i;
        EXPECT_EQ(d.aux2, s.aux2) << label << " event " << i;
        EXPECT_EQ(d.a, s.a) << label << " event " << i;
        EXPECT_EQ(d.b, s.b) << label << " event " << i;
        EXPECT_EQ(d.result, s.result) << label << " event " << i;
        EXPECT_EQ(d.bound, s.bound) << label << " event " << i;
        EXPECT_EQ(d.addr0, s.addr0) << label << " event " << i;
        EXPECT_EQ(d.addr1, s.addr1) << label << " event " << i;
        EXPECT_EQ(d.addr2, s.addr2) << label << " event " << i;
        EXPECT_EQ(d.n, s.n) << label << " event " << i;
        EXPECT_TRUE(sameSpan(d.s0, s.s0)) << label << " event " << i;
        EXPECT_TRUE(sameSpan(d.s1, s.s1)) << label << " event " << i;
        EXPECT_TRUE(sameSpan(d.s2, s.s2)) << label << " event " << i;
        EXPECT_TRUE(sameSpan(d.s3, s.s3)) << label << " event " << i;
        if (::testing::Test::HasFailure())
            return;
    }
}

void
expectRoundTrip(const trace::Trace &tr, const char *label)
{
    for (const bool fuse : {true, false}) {
        const trace::BytecodeProgram bc =
            trace::compileTrace(tr, fuse);
        EXPECT_EQ(bc.numSourceEvents(), tr.numEvents()) << label;
        EXPECT_EQ(bc.handleCount(), tr.handleCount()) << label;
        EXPECT_EQ(bc.arenaKeys(), tr.arenaKeys()) << label;
        expectSameEvents(bc.decodeEvents(), tr.events(), label);
        if (!fuse)
            EXPECT_EQ(bc.numInstructions(), tr.numEvents()) << label;
        else
            EXPECT_LE(bc.numInstructions(), tr.numEvents()) << label;
    }
}

} // namespace

// ---------------- compile/decode round trip ----------------

TEST(BytecodeRoundTrip, CapturedGpmTracesDecodeExactly)
{
    const auto g = test::randomTestGraph(80, 600, 91);
    for (const gpm::GpmApp app :
         {gpm::GpmApp::T, gpm::GpmApp::TC, gpm::GpmApp::C4}) {
        const trace::Trace tr = captureGpm(g, app);
        ASSERT_GT(tr.numEvents(), 0u);
        expectRoundTrip(tr, gpm::gpmAppName(app));
    }
}

TEST(BytecodeRoundTrip, FusionShrinksScalarRuns)
{
    // The fused program must be strictly smaller whenever the trace
    // contains a run of identical consecutive scalarOps events.
    trace::TraceRecorder recorder;
    for (int i = 0; i < 100; ++i)
        recorder.scalarOps(3);
    recorder.scalarOps(4);
    for (int i = 0; i < 50; ++i)
        recorder.scalarOps(3);
    const trace::Trace tr = recorder.takeTrace();

    const auto fused = trace::compileTrace(tr, true);
    const auto plain = trace::compileTrace(tr, false);
    EXPECT_EQ(fused.numInstructions(), 3u);
    EXPECT_EQ(plain.numInstructions(), tr.numEvents());
    EXPECT_LT(fused.codeBytes(), plain.codeBytes());
    expectSameEvents(fused.decodeEvents(), tr.events(), "fused");
}

TEST(BytecodeRoundTrip, RandomizedRecorderTraces)
{
    // Property test: arbitrary valid recorder call sequences survive
    // compile -> decode exactly. Large 64-bit addresses force the
    // wide operand form; the generator also exercises sentinel
    // handles and every event kind.
    std::mt19937_64 rng(20260807);
    std::vector<Key> pool(256);
    for (std::size_t i = 0; i < pool.size(); ++i)
        pool[i] = static_cast<Key>(rng());

    auto keys = [&](std::size_t max_len) -> streams::KeySpan {
        const std::size_t len = rng() % (max_len + 1);
        const std::size_t off = rng() % (pool.size() - len);
        return {pool.data() + off, len};
    };
    auto addr = [&]() -> Addr {
        // Mix small and full-64-bit addresses so both narrow and
        // wide delta encodings appear.
        return (rng() & 1) ? static_cast<Addr>(rng() & 0xffff)
                           : static_cast<Addr>(rng());
    };

    trace::TraceRecorder recorder;
    std::vector<backend::BackendStream> live;
    auto pick = [&]() -> backend::BackendStream {
        if (live.empty() || rng() % 8 == 0)
            return backend::noStream;
        return live[rng() % live.size()];
    };

    for (int step = 0; step < 4000; ++step) {
        switch (rng() % 12) {
        case 0:
            recorder.scalarOps((rng() & 1)
                                   ? rng() % 64
                                   : rng()); // forces wide n
            break;
        case 1:
            recorder.scalarBranch(addr(), rng() & 1);
            break;
        case 2:
            recorder.scalarLoad(addr());
            break;
        case 3:
            live.push_back(recorder.streamLoad(
                addr(), static_cast<std::uint32_t>(rng()),
                rng() % 4, keys(32)));
            break;
        case 4:
            live.push_back(recorder.streamLoadKv(
                addr(), addr(), static_cast<std::uint32_t>(rng()),
                rng() % 4, keys(32)));
            break;
        case 5:
            if (!live.empty()) {
                const std::size_t i = rng() % live.size();
                recorder.streamFree(live[i]);
                live.erase(live.begin() + i);
            }
            break;
        case 6:
            live.push_back(recorder.setOp(
                static_cast<streams::SetOpKind>(rng() % 3), pick(),
                pick(), keys(32), keys(32),
                (rng() & 1) ? noBound : static_cast<Key>(rng()),
                keys(16), addr()));
            break;
        case 7:
            recorder.setOpCount(
                static_cast<streams::SetOpKind>(rng() % 3), pick(),
                pick(), keys(32), keys(32),
                (rng() & 1) ? noBound : static_cast<Key>(rng()),
                rng());
            break;
        case 8: {
            const auto ma = keys(8);
            const auto mb = keys(8);
            if (rng() & 1)
                recorder.valueIntersect(pick(), pick(), keys(32),
                                        keys(32), addr(), addr(),
                                        ma, mb);
            else
                recorder.denseValueIntersect(pick(), pick(),
                                             keys(32), keys(32),
                                             addr(), addr(), ma, mb);
            break;
        }
        case 9:
            live.push_back(recorder.valueMerge(
                pick(), pick(), keys(32), keys(32), addr(), addr(),
                rng(), addr()));
            break;
        case 10: {
            std::vector<backend::NestedItem> elems(1 + rng() % 4);
            for (auto &e : elems) {
                e.infoAddr = addr();
                e.keyAddr = addr();
                e.nested = keys(16);
                e.bound =
                    (rng() & 1) ? noBound : static_cast<Key>(rng());
                e.count = rng() % 1000;
            }
            recorder.nestedIntersect(pick(), keys(32), elems);
            break;
        }
        case 11:
            if (rng() & 1)
                recorder.consumeStream(pick());
            else
                recorder.iterateStream(pick(), rng(), rng() % 8);
            break;
        }
    }
    const trace::Trace tr = recorder.takeTrace();
    ASSERT_GT(tr.numEvents(), 1000u);
    expectRoundTrip(tr, "randomized");
}

TEST(BytecodeRoundTrip, HandBuiltExplicitResultIds)
{
    // Recorder-produced traces always assign creation-order result
    // handles (the implicit form); a hand-built trace with
    // out-of-order results must still round-trip via the explicit
    // form.
    trace::Trace tr;
    const Key data[4] = {1, 2, 3, 4};
    const trace::SpanRef ref = tr.intern({data, 4});

    trace::Event load;
    load.kind = trace::EventKind::StreamLoad;
    load.result = 7; // not the creation-order id 0
    load.addr0 = 0x1234;
    load.n = 4;
    load.s0 = ref;
    tr.append(load);

    trace::Event op;
    op.kind = trace::EventKind::SetOp;
    op.aux = static_cast<std::uint8_t>(streams::SetOpKind::Intersect);
    op.a = 7;
    op.b = trace::noTraceStream;
    op.result = 2;
    op.s0 = ref;
    op.addr0 = ~std::uint64_t{0}; // max address: wide delta
    tr.append(op);

    trace::Event free_ev;
    free_ev.kind = trace::EventKind::StreamFree;
    free_ev.a = 2;
    tr.append(free_ev);

    tr.setHandleCount(8);
    expectRoundTrip(tr, "hand-built");

    const auto bc = trace::compileTrace(tr);
    const std::string bytes = bc.serialize();
    const auto back = trace::BytecodeProgram::deserialize(bytes);
    expectSameEvents(back.decodeEvents(), tr.events(),
                     "hand-built serialized");
}

// ---------------- replay-mode cycle identity ----------------

TEST(BytecodeReplay, CycleIdenticalForEveryGpmApp)
{
    const auto g = test::randomTestGraph(60, 420, 92);
    const arch::SparseCoreConfig config;
    for (const gpm::GpmApp app : gpm::allGpmApps()) {
        if (app == gpm::GpmApp::FSM)
            continue; // labeled-graph path covered below
        const trace::Trace tr = captureGpm(g, app);

        backend::CpuBackend cpu_e(config.core, config.mem);
        backend::CpuBackend cpu_b(config.core, config.mem);
        const auto ce = trace::replay(tr, cpu_e, std::nullopt,
                                      trace::ReplayMode::Event);
        const auto cb = trace::replay(tr, cpu_b, std::nullopt,
                                      trace::ReplayMode::Bytecode);
        EXPECT_EQ(ce.cycles, cb.cycles) << gpm::gpmAppName(app);
        EXPECT_EQ(ce.breakdown.cycles, cb.breakdown.cycles)
            << gpm::gpmAppName(app);

        backend::SparseCoreBackend sc_e(config), sc_b(config);
        const auto se = trace::replay(tr, sc_e, std::nullopt,
                                      trace::ReplayMode::Event);
        const auto sb = trace::replay(tr, sc_b, std::nullopt,
                                      trace::ReplayMode::Bytecode);
        EXPECT_EQ(se.cycles, sb.cycles) << gpm::gpmAppName(app);
        EXPECT_EQ(se.breakdown.cycles, sb.breakdown.cycles)
            << gpm::gpmAppName(app);
    }
}

TEST(BytecodeReplay, CycleIdenticalForFsm)
{
    auto base = test::randomTestGraph(70, 420, 93);
    std::vector<graph::Label> labels(base.numVertices());
    for (VertexId v = 0; v < base.numVertices(); ++v)
        labels[v] = static_cast<graph::Label>(v % 3);
    const graph::LabeledGraph lg(std::move(base), labels);

    trace::TraceRecorder recorder;
    gpm::runFsm(lg, recorder, 2);
    const trace::Trace tr = recorder.takeTrace();

    const arch::SparseCoreConfig config;
    backend::SparseCoreBackend sc_e(config), sc_b(config);
    EXPECT_EQ(trace::replay(tr, sc_e, std::nullopt,
                            trace::ReplayMode::Event)
                  .cycles,
              trace::replay(tr, sc_b, std::nullopt,
                            trace::ReplayMode::Bytecode)
                  .cycles);
}

TEST(BytecodeReplay, CycleIdenticalForTensorKernels)
{
    const arch::SparseCoreConfig config;
    std::vector<trace::Trace> traces;

    const auto a = tensor::generateMatrix(
        30, 40, 240, tensor::MatrixStructure::Uniform, 31, "A");
    const auto b = tensor::generateMatrix(
        40, 25, 220, tensor::MatrixStructure::Uniform, 32, "B");
    for (const auto algorithm : {kernels::SpmspmAlgorithm::Inner,
                                 kernels::SpmspmAlgorithm::Outer,
                                 kernels::SpmspmAlgorithm::Gustavson}) {
        trace::TraceRecorder recorder;
        kernels::runSpmspm(a, b, algorithm, recorder);
        traces.push_back(recorder.takeTrace());
    }
    const auto t = tensor::generateTensor(15, 12, 20, 260, 43, "T");
    {
        trace::TraceRecorder recorder;
        kernels::runTtv(t, std::vector<Value>(20, 1.5), recorder);
        traces.push_back(recorder.takeTrace());
    }
    {
        const auto m = tensor::generateMatrix(
            10, 20, 120, tensor::MatrixStructure::Uniform, 33, "M");
        trace::TraceRecorder recorder;
        kernels::runTtm(t, m, recorder);
        traces.push_back(recorder.takeTrace());
    }

    for (std::size_t i = 0; i < traces.size(); ++i) {
        const trace::Trace &tr = traces[i];
        expectRoundTrip(tr, "tensor");
        backend::CpuBackend cpu_e(config.core, config.mem);
        backend::CpuBackend cpu_b(config.core, config.mem);
        EXPECT_EQ(trace::replay(tr, cpu_e, std::nullopt,
                                trace::ReplayMode::Event)
                      .cycles,
                  trace::replay(tr, cpu_b, std::nullopt,
                                trace::ReplayMode::Bytecode)
                      .cycles)
            << "kernel trace " << i;
        backend::SparseCoreBackend sc_e(config), sc_b(config);
        EXPECT_EQ(trace::replay(tr, sc_e, std::nullopt,
                                trace::ReplayMode::Event)
                      .cycles,
                  trace::replay(tr, sc_b, std::nullopt,
                                trace::ReplayMode::Bytecode)
                      .cycles)
            << "kernel trace " << i;
    }
}

TEST(BytecodeReplay, FunctionalStatsIdenticalAcrossEngines)
{
    // The bytecode path replays the functional substrate by applying
    // the compile-time EventProfile aggregate instead of walking, so
    // its whole observable surface — counters, stream-length
    // histogram, live-stream balance — must be bit-identical to the
    // per-event walk, on both GPM and tensor traces.
    std::vector<trace::Trace> traces;
    const auto g = test::randomTestGraph(60, 420, 97);
    traces.push_back(captureGpm(g, gpm::GpmApp::C4));
    const auto a = tensor::generateMatrix(
        30, 40, 240, tensor::MatrixStructure::Uniform, 31, "A");
    const auto b = tensor::generateMatrix(
        40, 25, 220, tensor::MatrixStructure::Uniform, 32, "B");
    {
        trace::TraceRecorder recorder;
        kernels::runSpmspm(a, b, kernels::SpmspmAlgorithm::Gustavson,
                           recorder);
        traces.push_back(recorder.takeTrace());
    }
    {
        const auto t = tensor::generateTensor(15, 12, 20, 260, 43, "T");
        trace::TraceRecorder recorder;
        kernels::runTtv(t, std::vector<Value>(20, 1.5), recorder);
        traces.push_back(recorder.takeTrace());
    }

    for (std::size_t i = 0; i < traces.size(); ++i) {
        const trace::Trace &tr = traces[i];
        backend::FunctionalBackend ev, bc;
        trace::replay(tr, ev, std::nullopt, trace::ReplayMode::Event);
        trace::replay(tr, bc, std::nullopt,
                      trace::ReplayMode::Bytecode);
        EXPECT_EQ(ev.stats().dump(), bc.stats().dump())
            << "trace " << i;
        EXPECT_EQ(ev.liveStreams(), bc.liveStreams()) << "trace " << i;
        const Histogram &he = ev.streamLengthHist();
        const Histogram &hb = bc.streamLengthHist();
        EXPECT_EQ(he.samples(), hb.samples()) << "trace " << i;
        EXPECT_EQ(he.sum(), hb.sum()) << "trace " << i;
        EXPECT_EQ(he.maxValue(), hb.maxValue()) << "trace " << i;
        EXPECT_EQ(he.buckets(), hb.buckets()) << "trace " << i;
    }
}

TEST(BytecodeReplay, ReplayCompiledMatchesEventWalk)
{
    // The compile-once path (what compare() and the microbench use):
    // one program, many replays, same cycles as the event walker.
    const auto g = test::randomTestGraph(80, 600, 94);
    const trace::Trace tr = captureGpm(g, gpm::GpmApp::C4);
    const trace::BytecodeProgram bc = trace::compileTrace(tr);

    const arch::SparseCoreConfig config;
    backend::SparseCoreBackend ref(config);
    const auto want =
        trace::replay(tr, ref, std::nullopt, trace::ReplayMode::Event);
    for (int round = 0; round < 3; ++round) {
        backend::SparseCoreBackend be(config);
        const auto got = trace::replayCompiled(bc, be);
        EXPECT_EQ(want.cycles, got.cycles) << "round " << round;
        EXPECT_EQ(want.breakdown.cycles, got.breakdown.cycles);
    }
}

TEST(BytecodeReplay, ModeNamesAndResolution)
{
    EXPECT_STREQ(trace::replayModeName(trace::ReplayMode::Event),
                 "event");
    EXPECT_STREQ(trace::replayModeName(trace::ReplayMode::Bytecode),
                 "bytecode");
    // Explicit modes pass through resolution untouched; only Auto
    // consults SC_REPLAY.
    EXPECT_EQ(trace::resolveReplayMode(trace::ReplayMode::Event),
              trace::ReplayMode::Event);
    EXPECT_EQ(trace::resolveReplayMode(trace::ReplayMode::Bytecode),
              trace::ReplayMode::Bytecode);
    EXPECT_EQ(trace::resolveReplayMode(trace::ReplayMode::Auto),
              trace::defaultReplayMode());
    EXPECT_NE(trace::defaultReplayMode(), trace::ReplayMode::Auto);
}

// ---------------- serialization ----------------

TEST(BytecodeSerialization, RoundTripIsByteStable)
{
    const auto g = test::randomTestGraph(60, 400, 95);
    const trace::Trace tr = captureGpm(g, gpm::GpmApp::T);
    const trace::BytecodeProgram bc = trace::compileTrace(tr);

    const std::string bytes = bc.serialize();
    const auto back = trace::BytecodeProgram::deserialize(bytes);
    EXPECT_EQ(back.numInstructions(), bc.numInstructions());
    EXPECT_EQ(back.numSourceEvents(), bc.numSourceEvents());
    EXPECT_EQ(back.handleCount(), bc.handleCount());
    EXPECT_EQ(back.code(), bc.code());
    EXPECT_EQ(back.serialize(), bytes);

    backend::SparseCoreBackend be_a, be_b;
    EXPECT_EQ(trace::replayCompiled(bc, be_a).cycles,
              trace::replayCompiled(back, be_b).cycles);
}

TEST(BytecodeSerialization, RejectsCorruptInput)
{
    const auto g = test::randomTestGraph(30, 120, 96);
    const trace::Trace tr = captureGpm(g, gpm::GpmApp::TC);
    const std::string bytes = trace::compileTrace(tr).serialize();

    EXPECT_THROW(trace::BytecodeProgram::deserialize("bogus"),
                 SimError);
    EXPECT_THROW(trace::BytecodeProgram::deserialize(
                     std::string_view(bytes.data(), bytes.size() / 2)),
                 SimError);
    std::string wrong_magic = bytes;
    wrong_magic[0] = 'X';
    EXPECT_THROW(trace::BytecodeProgram::deserialize(wrong_magic),
                 SimError);

    // Out-of-range operands must fail validate() on load, so the
    // unchecked replay loops never see them: force the handle count
    // to zero, making every recorded stream handle out of range.
    std::string bad_handles = bytes;
    for (int i = 0; i < 4; ++i)
        bad_handles[8 + i] = 0; // handleCount field after magic+version
    EXPECT_THROW(trace::BytecodeProgram::deserialize(bad_handles),
                 SimError);
}

TEST(BytecodeSerialization, GoldenBytecodeStaysByteStable)
{
    // Pins the SCBC format the same way golden_trace.bin pins SCTR: a
    // layout change must bump bytecodeFormatVersion and regenerate
    // (SPARSECORE_REGEN_GOLDEN=1 ./sparsecore_tests, or scverify
    // --compile-bytecode golden_trace.bin golden_trace.scbc).
    const std::string path =
        std::string(SPARSECORE_TEST_DATA_DIR) + "/golden_trace.scbc";
    const trace::Trace tr =
        captureGpm(test::figureOneGraph(), gpm::GpmApp::T);
    const std::string bytes = trace::compileTrace(tr).serialize();

    if (std::getenv("SPARSECORE_REGEN_GOLDEN")) {
        trace::compileTrace(tr).saveFile(path);
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing " << path;
    std::ostringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str(), bytes)
        << "compiled bytecode diverged from the golden SCBC file";

    const auto golden = trace::BytecodeProgram::loadFile(path);
    backend::SparseCoreBackend be_a, be_b;
    EXPECT_EQ(trace::replayCompiled(golden, be_a).cycles,
              trace::replay(tr, be_b, std::nullopt,
                            trace::ReplayMode::Event)
                  .cycles);
}

// ---------------- api paths across modes ----------------

TEST(BytecodeApi, CompareIdenticalAcrossReplayModes)
{
    const auto g = test::randomTestGraph(90, 700, 97);
    api::Machine machine;
    auto req = api::RunRequest::gpm(gpm::GpmApp::TC, g);

    req.options.replayMode = trace::ReplayMode::Event;
    const auto ev = machine.compare(req);
    req.options.replayMode = trace::ReplayMode::Bytecode;
    const auto bc = machine.compare(req);

    EXPECT_EQ(ev.baseline.cycles, bc.baseline.cycles);
    EXPECT_EQ(ev.accelerated.cycles, bc.accelerated.cycles);
    EXPECT_EQ(ev.baseline.breakdown.cycles,
              bc.baseline.breakdown.cycles);
    EXPECT_EQ(ev.functionalResult, bc.functionalResult);

    // TraceStats: the bytecode leg reports its compiled size and
    // mode; the event leg reports no bytecode.
    EXPECT_EQ(ev.trace.replayMode, "event");
    EXPECT_EQ(ev.trace.bytecodeBytes, 0u);
    EXPECT_EQ(bc.trace.replayMode, "bytecode");
    EXPECT_GT(bc.trace.bytecodeBytes, 0u);
    EXPECT_GE(bc.trace.compileSeconds, 0.0);
    EXPECT_NE(bc.str().find("bytecode:"), std::string::npos);
    EXPECT_NE(bc.str().find("(bytecode)"), std::string::npos);
}

TEST(BytecodeApi, CompareParallelIdenticalAcrossReplayModes)
{
    const auto g = test::randomTestGraph(150, 1200, 98);
    api::HostOptions ev_host, bc_host;
    ev_host.replayMode = trace::ReplayMode::Event;
    bc_host.replayMode = trace::ReplayMode::Bytecode;

    const auto ev = api::compareParallelGpm(gpm::GpmApp::T, g, 4, {},
                                            1, ev_host);
    const auto bc = api::compareParallelGpm(gpm::GpmApp::T, g, 4, {},
                                            1, bc_host);
    EXPECT_EQ(ev.functionalResult, bc.functionalResult);
    EXPECT_EQ(ev.baseline.cycles, bc.baseline.cycles);
    EXPECT_EQ(ev.accelerated.cycles, bc.accelerated.cycles);
    ASSERT_EQ(ev.baseline.perCore.size(), bc.baseline.perCore.size());
    for (std::size_t c = 0; c < ev.baseline.perCore.size(); ++c) {
        EXPECT_EQ(ev.baseline.perCore[c], bc.baseline.perCore[c]);
        EXPECT_EQ(ev.accelerated.perCore[c],
                  bc.accelerated.perCore[c]);
    }

    const auto mine_ev = api::mineParallelSparseCore(
        gpm::GpmApp::T, g, 4, {}, 1, ev_host);
    const auto mine_bc = api::mineParallelSparseCore(
        gpm::GpmApp::T, g, 4, {}, 1, bc_host);
    EXPECT_EQ(mine_ev.embeddings, mine_bc.embeddings);
    EXPECT_EQ(mine_ev.cycles, mine_bc.cycles);
}

// ---------------- compactness ----------------

TEST(BytecodeStats, CodeIsSmallerThanEventArray)
{
    // The point of the lowering: the flat code must be a small
    // fraction of the 112-byte-per-event array it replaces.
    const auto g = test::randomTestGraph(100, 900, 99);
    const trace::Trace tr = captureGpm(g, gpm::GpmApp::C4);
    const trace::BytecodeProgram bc = trace::compileTrace(tr);

    const std::size_t event_bytes =
        tr.numEvents() * sizeof(trace::Event);
    EXPECT_LT(bc.codeBytes(), event_bytes / 4)
        << "bytecode should be at least 4x denser than the event "
           "array";
    EXPECT_GT(bc.memoryBytes(), bc.codeBytes());
}
