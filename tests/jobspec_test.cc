/**
 * @file
 * Tests for the serializable JobSpec API (api/jobspec.hh): schema
 * versioning, canonical round-trips, strict rejection of malformed
 * job descriptors with structured diagnostics (never a throw), name
 * resolution against the dataset registries, and a seeded mutation
 * sweep over a valid-job corpus.
 */

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "api/jobspec.hh"

using namespace sc;
using api::JobSpec;
using api::parseJobSpec;
using api::resolveJob;

namespace {

/** All diagnostics joined, for failure messages. */
std::string
diagStr(const std::vector<api::JobDiag> &errors)
{
    std::string out;
    for (const auto &e : errors)
        out += e.field + ": " + e.message + "; ";
    return out;
}

/** Fields named by at least one diagnostic. */
std::vector<std::string>
diagFields(const std::vector<api::JobDiag> &errors)
{
    std::vector<std::string> fields;
    for (const auto &e : errors)
        fields.push_back(e.field);
    return fields;
}

bool
hasField(const std::vector<api::JobDiag> &errors,
         const std::string &field)
{
    for (const auto &e : errors)
        if (e.field == field)
            return true;
    return false;
}

/** A corpus of valid v1 job descriptions, one per workload/shape. */
const std::vector<std::string> &
validCorpus()
{
    static const std::vector<std::string> corpus = {
        R"({"version":1,"workload":"gpm","app":"T","dataset":"W"})",
        R"({"version":1,"id":"x","workload":"gpm","app":"4C","dataset":"C","mode":"run","substrate":"cpu"})",
        R"({"version":1,"workload":"gpm","app":"TC","dataset":"W","arch":{"sus":8,"window":32,"bandwidth":64,"nested":false}})",
        R"({"version":1,"workload":"fsm","dataset":"C","min_support":500,"num_labels":4})",
        R"({"version":1,"workload":"spmspm","dataset":"C","dataset_b":"E","algorithm":"inner"})",
        R"({"version":1,"workload":"ttv","dataset":"Ch","options":{"stride":8,"verify":false,"replay":"event"}})",
        R"({"version":1,"workload":"ttm","dataset":"U","options":{"stride":16,"host_threads":2,"kernel":"scalar","index_policy":"array","artifact_cache":false}})",
        R"({"version":1,"id":"p","priority":9,"workload":"gpm","app":"T","dataset":"W"})",
    };
    return corpus;
}

} // namespace

TEST(JobSpec, ParsesMinimalJob)
{
    const auto r = parseJobSpec(
        R"({"version":1,"workload":"gpm","app":"T","dataset":"W"})");
    ASSERT_TRUE(r.ok()) << diagStr(r.errors);
    EXPECT_EQ(r.spec->workload, api::RunRequest::Workload::Gpm);
    EXPECT_EQ(r.spec->dataset, "W");
    EXPECT_EQ(r.spec->mode, api::JobMode::Compare);
}

TEST(JobSpec, PriorityParsesValidatesAndRoundTrips)
{
    // Default 0 is omitted from the canonical form (back-compat with
    // pre-priority v1 documents); nonzero values round-trip.
    const auto plain = parseJobSpec(
        R"({"version":1,"workload":"gpm","app":"T","dataset":"W"})");
    ASSERT_TRUE(plain.ok());
    EXPECT_EQ(plain.spec->priority, 0);
    EXPECT_EQ(plain.spec->toJson().find("priority"),
              std::string::npos);

    const auto high = parseJobSpec(
        R"({"version":1,"priority":7,"workload":"fsm","dataset":"C",)"
        R"("min_support":500})");
    ASSERT_TRUE(high.ok()) << diagStr(high.errors);
    EXPECT_EQ(high.spec->priority, 7);
    const auto round = parseJobSpec(high.spec->toJson());
    ASSERT_TRUE(round.ok());
    EXPECT_EQ(round.spec->priority, 7);

    // Out-of-range and wrong-typed priorities are structured errors.
    EXPECT_TRUE(hasField(
        parseJobSpec(R"({"version":1,"priority":101,)"
                     R"("workload":"gpm","dataset":"W"})")
            .errors,
        "priority"));
    EXPECT_TRUE(hasField(
        parseJobSpec(R"({"version":1,"priority":-1,)"
                     R"("workload":"gpm","dataset":"W"})")
            .errors,
        "priority"));
    EXPECT_TRUE(hasField(
        parseJobSpec(R"({"version":1,"priority":"high",)"
                     R"("workload":"gpm","dataset":"W"})")
            .errors,
        "priority"));
    // validateJobSpec catches a bad directly-built spec too.
    api::JobSpec spec;
    spec.dataset = "W";
    spec.priority = 500;
    EXPECT_TRUE(hasField(validateJobSpec(spec), "priority"));
}

TEST(JobSpec, ResolveExposesDatasetAffinityKeys)
{
    // gpm/fsm jobs route through the ArtifactStore, so their
    // affinity key is the store trace key; tensor workloads share no
    // store artifacts and get no affinity.
    const auto gpm = parseJobSpec(
        R"({"version":1,"workload":"gpm","app":"T","dataset":"W"})");
    ASSERT_TRUE(gpm.ok());
    const auto gpm_resolved = resolveJob(*gpm.spec);
    ASSERT_TRUE(gpm_resolved.ok());
    EXPECT_EQ(gpm_resolved.job->affinityKey.rfind("gpm/T/g", 0), 0u);

    const auto fsm = parseJobSpec(
        R"({"version":1,"workload":"fsm","dataset":"C",)"
        R"("min_support":500})");
    ASSERT_TRUE(fsm.ok());
    const auto fsm_resolved = resolveJob(*fsm.spec);
    ASSERT_TRUE(fsm_resolved.ok());
    EXPECT_EQ(fsm_resolved.job->affinityKey.rfind("fsm/lg", 0), 0u);

    const auto ttv = parseJobSpec(
        R"({"version":1,"workload":"ttv","dataset":"Ch"})");
    ASSERT_TRUE(ttv.ok());
    const auto ttv_resolved = resolveJob(*ttv.spec);
    ASSERT_TRUE(ttv_resolved.ok());
    EXPECT_TRUE(ttv_resolved.job->affinityKey.empty());

    // Same dataset + sampling -> same lane; different dataset or
    // sampling -> different lane.
    const auto again = resolveJob(*gpm.spec);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.job->affinityKey, gpm_resolved.job->affinityKey);
    auto strided = *gpm.spec;
    strided.options.rootStride = 4;
    const auto strided_resolved = resolveJob(strided);
    ASSERT_TRUE(strided_resolved.ok());
    EXPECT_NE(strided_resolved.job->affinityKey,
              gpm_resolved.job->affinityKey);

    // A disabled artifact cache shares nothing: no affinity lane.
    auto uncached = *gpm.spec;
    uncached.options.artifactCache = false;
    const auto uncached_resolved = resolveJob(uncached);
    ASSERT_TRUE(uncached_resolved.ok());
    EXPECT_TRUE(uncached_resolved.job->affinityKey.empty());
}

TEST(JobSpec, CanonicalJsonRoundTrips)
{
    for (const std::string &text : validCorpus()) {
        const auto first = parseJobSpec(text);
        ASSERT_TRUE(first.ok()) << text << " -> "
                                << diagStr(first.errors);
        const std::string canonical = first.spec->toJson();
        const auto second = parseJobSpec(canonical);
        ASSERT_TRUE(second.ok()) << canonical;
        EXPECT_EQ(second.spec->toJson(), canonical) << text;
    }
}

TEST(JobSpec, VersionIsRequiredAndChecked)
{
    EXPECT_TRUE(hasField(
        parseJobSpec(R"({"workload":"gpm","dataset":"W"})").errors,
        "version"));
    EXPECT_TRUE(hasField(
        parseJobSpec(
            R"({"version":2,"workload":"gpm","dataset":"W"})")
            .errors,
        "version"));
    EXPECT_TRUE(hasField(
        parseJobSpec(
            R"({"version":"1","workload":"gpm","dataset":"W"})")
            .errors,
        "version"));
}

TEST(JobSpec, TruncatedJsonIsAStructuredError)
{
    const auto r = parseJobSpec(R"({"version":1,"workload":"gp)");
    ASSERT_FALSE(r.ok());
    ASSERT_EQ(r.errors.size(), 1u);
    EXPECT_NE(r.errors[0].message.find("line"), std::string::npos);
}

TEST(JobSpec, UnknownEnumStringsAreRejected)
{
    EXPECT_TRUE(hasField(
        parseJobSpec(R"({"version":1,"workload":"graph"})").errors,
        "workload"));
    EXPECT_TRUE(hasField(
        parseJobSpec(
            R"({"version":1,"workload":"gpm","app":"T9","dataset":"W"})")
            .errors,
        "app"));
    EXPECT_TRUE(hasField(
        parseJobSpec(
            R"({"version":1,"workload":"gpm","dataset":"W",)"
            R"("mode":"run","substrate":"gpu"})")
            .errors,
        "substrate"));
    EXPECT_TRUE(hasField(
        parseJobSpec(
            R"({"version":1,"workload":"spmspm","dataset":"C",)"
            R"("algorithm":"fast"})")
            .errors,
        "algorithm"));
    EXPECT_TRUE(hasField(
        parseJobSpec(
            R"({"version":1,"workload":"ttv","dataset":"Ch",)"
            R"("options":{"replay":"jit"}})")
            .errors,
        "options.replay"));
}

TEST(JobSpec, UnknownFieldsAreRejectedEverywhere)
{
    EXPECT_TRUE(hasField(
        parseJobSpec(
            R"({"version":1,"workload":"gpm","dataset":"W","speed":9})")
            .errors,
        "speed"));
    EXPECT_TRUE(hasField(
        parseJobSpec(
            R"({"version":1,"workload":"gpm","dataset":"W",)"
            R"("arch":{"cores":6}})")
            .errors,
        "arch.cores"));
    EXPECT_TRUE(hasField(
        parseJobSpec(
            R"({"version":1,"workload":"gpm","dataset":"W",)"
            R"("options":{"threads":4}})")
            .errors,
        "options.threads"));
}

TEST(JobSpec, MissingDatasetReferences)
{
    EXPECT_TRUE(hasField(
        parseJobSpec(R"({"version":1,"workload":"gpm","app":"T"})")
            .errors,
        "dataset"));
    EXPECT_TRUE(hasField(
        parseJobSpec(R"({"version":1,"workload":"fsm"})").errors,
        "dataset"));
    EXPECT_TRUE(hasField(
        parseJobSpec(R"({"version":1,"workload":"ttm"})").errors,
        "dataset"));
    // dataset and graph_file are mutually exclusive for gpm.
    EXPECT_TRUE(hasField(
        parseJobSpec(
            R"({"version":1,"workload":"gpm","dataset":"W",)"
            R"("graph_file":"/tmp/x.txt"})")
            .errors,
        "dataset"));
}

TEST(JobSpec, OutOfRangeNumbers)
{
    EXPECT_TRUE(hasField(
        parseJobSpec(
            R"({"version":1,"workload":"ttv","dataset":"Ch",)"
            R"("options":{"stride":0}})")
            .errors,
        "options.stride"));
    EXPECT_TRUE(hasField(
        parseJobSpec(
            R"({"version":1,"workload":"ttv","dataset":"Ch",)"
            R"("options":{"stride":10000000000}})")
            .errors,
        "options.stride"));
    EXPECT_TRUE(hasField(
        parseJobSpec(
            R"({"version":1,"workload":"gpm","dataset":"W",)"
            R"("options":{"root_stride":-3}})")
            .errors,
        "options.root_stride"));
    EXPECT_TRUE(hasField(
        parseJobSpec(
            R"({"version":1,"workload":"fsm","dataset":"C",)"
            R"("min_support":0})")
            .errors,
        "min_support"));
    EXPECT_TRUE(hasField(
        parseJobSpec(
            R"({"version":1,"workload":"gpm","dataset":"W",)"
            R"("arch":{"sus":0}})")
            .errors,
        "arch.sus"));
}

TEST(JobSpec, WorkloadApplicabilityIsChecked)
{
    // FSM fields on a gpm job, gpm fields on a tensor job, ...
    EXPECT_TRUE(hasField(
        parseJobSpec(
            R"({"version":1,"workload":"gpm","dataset":"W",)"
            R"("min_support":5})")
            .errors,
        "min_support"));
    EXPECT_TRUE(hasField(
        parseJobSpec(
            R"({"version":1,"workload":"ttv","dataset":"Ch",)"
            R"("app":"T"})")
            .errors,
        "app"));
    EXPECT_TRUE(hasField(
        parseJobSpec(
            R"({"version":1,"workload":"fsm","dataset":"C",)"
            R"("algorithm":"inner"})")
            .errors,
        "algorithm"));
    // substrate without mode=run is meaningless.
    EXPECT_TRUE(hasField(
        parseJobSpec(
            R"({"version":1,"workload":"gpm","dataset":"W",)"
            R"("substrate":"cpu"})")
            .errors,
        "substrate"));
}

TEST(JobSpec, WrongTypesAreRejected)
{
    EXPECT_FALSE(parseJobSpec(R"([1,2,3])").ok());
    EXPECT_FALSE(
        parseJobSpec(
            R"({"version":1,"workload":"gpm","dataset":17})")
            .ok());
    EXPECT_FALSE(
        parseJobSpec(
            R"({"version":1,"workload":"gpm","dataset":"W",)"
            R"("options":{"stride":2.5}})")
            .ok());
    EXPECT_FALSE(
        parseJobSpec(
            R"({"version":1,"workload":"gpm","dataset":"W",)"
            R"("options":{"verify":"yes"}})")
            .ok());
    EXPECT_FALSE(
        parseJobSpec(
            R"({"version":1,"workload":"gpm","dataset":"W",)"
            R"("arch":3})")
            .ok());
}

TEST(JobSpec, ResolveRejectsUnknownRegistryKeys)
{
    const auto parse = [](const char *text) {
        const auto r = parseJobSpec(text);
        EXPECT_TRUE(r.ok()) << diagStr(r.errors);
        return *r.spec;
    };
    {
        const auto r = resolveJob(parse(
            R"({"version":1,"workload":"gpm","dataset":"ZZ"})"));
        ASSERT_FALSE(r.ok());
        EXPECT_TRUE(hasField(r.errors, "dataset"));
        // The diagnostic lists the valid keys.
        EXPECT_NE(r.errors[0].message.find("W"), std::string::npos);
    }
    EXPECT_FALSE(
        resolveJob(parse(
            R"({"version":1,"workload":"spmspm","dataset":"QQ"})"))
            .ok());
    EXPECT_FALSE(
        resolveJob(parse(
            R"({"version":1,"workload":"ttv","dataset":"W"})"))
            .ok());
    EXPECT_FALSE(
        resolveJob(parse(
            R"({"version":1,"workload":"gpm",)"
            R"("graph_file":"/nonexistent/edges.txt"})"))
            .ok());
}

TEST(JobSpec, ResolveBuildsARunnableRequest)
{
    const auto r = parseJobSpec(
        R"({"version":1,"workload":"gpm","app":"T","dataset":"W",)"
        R"("arch":{"sus":8}})");
    ASSERT_TRUE(r.ok());
    const auto resolved = resolveJob(*r.spec);
    ASSERT_TRUE(resolved.ok()) << diagStr(resolved.errors);
    const api::ResolvedJob &job = *resolved.job;
    EXPECT_EQ(job.config.numSus, 8u);
    ASSERT_NE(job.request.graph, nullptr);
    EXPECT_EQ(job.request.graph, job.graph.get());
    EXPECT_EQ(job.request.workload, api::RunRequest::Workload::Gpm);
}

TEST(JobSpec, SeededMutationSweepNeverThrows)
{
    // Deterministic fuzz: mutate every corpus entry a few hundred
    // ways (truncate, flip, insert, delete) — every mutant must come
    // back as ok() or as structured diagnostics; a throw or crash
    // fails the test (and would take down a server batch).
    std::mt19937 rng(0xC0FFEE);
    const std::string charset =
        "{}[]\",:0123456789abcdefghijklmnopqrstuvwxyz \\";
    unsigned parsed_ok = 0, rejected = 0;
    for (const std::string &base : validCorpus()) {
        for (int i = 0; i < 200; ++i) {
            std::string mutant = base;
            switch (rng() % 4) {
              case 0: // truncate
                mutant.resize(rng() % (mutant.size() + 1));
                break;
              case 1: // flip one byte
                if (!mutant.empty())
                    mutant[rng() % mutant.size()] =
                        charset[rng() % charset.size()];
                break;
              case 2: // insert one byte
                mutant.insert(mutant.begin() +
                                  static_cast<std::ptrdiff_t>(
                                      rng() % (mutant.size() + 1)),
                              charset[rng() % charset.size()]);
                break;
              default: // delete one byte
                if (!mutant.empty())
                    mutant.erase(mutant.begin() +
                                 static_cast<std::ptrdiff_t>(
                                     rng() % mutant.size()));
                break;
            }
            const auto r = parseJobSpec(mutant); // must not throw
            if (r.ok()) {
                ++parsed_ok;
                // An accepted mutant must round-trip like any other
                // valid spec.
                EXPECT_TRUE(
                    parseJobSpec(r.spec->toJson()).ok())
                    << mutant;
            } else {
                ++rejected;
                EXPECT_FALSE(r.errors.empty()) << mutant;
            }
        }
    }
    // The sweep must actually exercise both outcomes.
    EXPECT_GT(parsed_ok, 0u);
    EXPECT_GT(rejected, 800u);
}

TEST(JobSpec, DiagnosticsSerializeToJson)
{
    const auto r = parseJobSpec(
        R"({"version":1,"workload":"gpm","dataset":"W","bogus":1})");
    ASSERT_FALSE(r.ok());
    const std::string dumped = r.errors[0].toJsonValue().dump();
    EXPECT_NE(dumped.find("\"field\":\"bogus\""), std::string::npos);
    EXPECT_EQ(diagFields(r.errors).size(), r.errors.size());
}
