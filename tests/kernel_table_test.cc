/**
 * @file
 * Property tests for the runtime-dispatched SIMD kernel registry
 * (streams/simd): every available level must return bit-identical
 * outputs AND bit-identical SetOpResult work summaries versus the
 * scalar reference templates, the .C counting forms must agree with
 * their materializing twins, and — the load-bearing invariant —
 * simulated cycles must not move by a single cycle when the kernel
 * level changes (golden-trace replay and Machine comparisons under
 * ScopedKernelOverride).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "api/machine.hh"
#include "api/parallel.hh"
#include "backend/cpu_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "common/rng.hh"
#include "streams/simd/kernel_table.hh"
#include "test_util.hh"
#include "trace/replay.hh"
#include "trace/trace.hh"

using namespace sc;
using namespace sc::streams;

namespace {

std::vector<Key>
sortedRandom(Rng &rng, std::size_t n, Key universe)
{
    std::set<Key> s;
    while (s.size() < n)
        s.insert(static_cast<Key>(rng.below(universe)));
    return {s.begin(), s.end()};
}

void
expectSameResult(const SetOpResult &ref, const SetOpResult &got,
                 const std::string &what)
{
    EXPECT_EQ(ref.count, got.count) << what;
    EXPECT_EQ(ref.steps, got.steps) << what;
    EXPECT_EQ(ref.aConsumed, got.aConsumed) << what;
    EXPECT_EQ(ref.bConsumed, got.bConsumed) << what;
}

/** Operand pairs covering the shapes the satellites call out: empty,
 *  single-element, similar lengths, heavy skew (galloping paths),
 *  dense overlap, disjoint ranges, and sub-block remainders. */
std::vector<std::pair<std::vector<Key>, std::vector<Key>>>
operandPairs(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<std::vector<Key>, std::vector<Key>>> pairs;
    pairs.push_back({{}, {}});
    pairs.push_back({{}, sortedRandom(rng, 17, 100)});
    pairs.push_back({sortedRandom(rng, 17, 100), {}});
    pairs.push_back({{42}, sortedRandom(rng, 33, 100)});
    pairs.push_back({sortedRandom(rng, 33, 100), {42}});
    pairs.push_back({{7}, {7}});
    // Similar lengths, dense overlap (small universe).
    pairs.push_back(
        {sortedRandom(rng, 200, 400), sortedRandom(rng, 180, 400)});
    // Similar lengths, sparse overlap.
    pairs.push_back(
        {sortedRandom(rng, 150, 100000), sortedRandom(rng, 170, 100000)});
    // Sub-block lengths (< one AVX2 block).
    pairs.push_back({sortedRandom(rng, 5, 50), sortedRandom(rng, 6, 50)});
    // Heavy skew in both directions (galloping fast paths).
    pairs.push_back(
        {sortedRandom(rng, 2000, 10000), sortedRandom(rng, 20, 10000)});
    pairs.push_back(
        {sortedRandom(rng, 20, 10000), sortedRandom(rng, 2000, 10000)});
    // Disjoint key ranges (pointer sprints).
    {
        auto lo = sortedRandom(rng, 100, 500);
        auto hi = sortedRandom(rng, 100, 500);
        for (Key &k : hi)
            k += 1000;
        pairs.push_back({lo, hi});
    }
    return pairs;
}

std::vector<Key>
boundsFor(const std::vector<Key> &a, const std::vector<Key> &b)
{
    std::vector<Key> bounds = {noBound, 0};
    if (!a.empty())
        bounds.push_back(a[a.size() / 2]);
    if (!b.empty())
        bounds.push_back(b.back() + 1);
    bounds.push_back(3);
    return bounds;
}

} // namespace

TEST(KernelTable, ScalarAlwaysAvailable)
{
    EXPECT_TRUE(kernelLevelAvailable(KernelLevel::Scalar));
    const auto levels = availableKernelLevels();
    ASSERT_FALSE(levels.empty());
    EXPECT_EQ(levels.front(), KernelLevel::Scalar);
    for (const KernelLevel level : levels)
        EXPECT_EQ(kernelsFor(level).level, level);
}

TEST(KernelTable, ParseRoundTrips)
{
    for (const KernelLevel level :
         {KernelLevel::Scalar, KernelLevel::Sse, KernelLevel::Avx2})
        EXPECT_EQ(parseKernelLevel(kernelLevelName(level)), level);
    EXPECT_FALSE(parseKernelLevel("avx512").has_value());
    EXPECT_FALSE(parseKernelLevel("").has_value());
    EXPECT_FALSE(parseKernelLevel("auto").has_value());
}

TEST(KernelTable, OverrideIsScopedAndNests)
{
    const KernelLevel def = activeKernels().level;
    {
        ScopedKernelOverride outer(KernelLevel::Scalar);
        EXPECT_EQ(activeKernels().level, KernelLevel::Scalar);
        for (const KernelLevel level : availableKernelLevels()) {
            ScopedKernelOverride inner(level);
            EXPECT_EQ(activeKernels().level, level);
        }
        EXPECT_EQ(activeKernels().level, KernelLevel::Scalar);
    }
    EXPECT_EQ(activeKernels().level, def);
}

TEST(KernelTable, UnavailableLevelIsFatal)
{
    bool any_missing = false;
    for (const KernelLevel level :
         {KernelLevel::Sse, KernelLevel::Avx2}) {
        if (kernelLevelAvailable(level))
            continue;
        any_missing = true;
        EXPECT_THROW(kernelsFor(level), SimError);
    }
    if (!any_missing)
        GTEST_SKIP() << "all kernel levels available on this host";
}

class KernelProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(KernelProperty, AllLevelsMatchScalarReference)
{
    for (const auto &[a, b] : operandPairs(GetParam())) {
        for (const Key bound : boundsFor(a, b)) {
            for (const auto kind : {SetOpKind::Intersect,
                                    SetOpKind::Subtract,
                                    SetOpKind::Merge}) {
                // Scalar reference: the templates themselves.
                std::vector<Key> ref_out;
                SetOpResult ref;
                switch (kind) {
                  case SetOpKind::Intersect:
                    ref = intersect(a, b, bound, &ref_out);
                    break;
                  case SetOpKind::Subtract:
                    ref = subtract(a, b, bound, &ref_out);
                    break;
                  case SetOpKind::Merge:
                    ref = merge(a, b, &ref_out);
                    break;
                }
                for (const KernelLevel level : availableKernelLevels()) {
                    ScopedKernelOverride forced(level);
                    const std::string what =
                        std::string(setOpName(kind)) + " level=" +
                        kernelLevelName(level) + " |a|=" +
                        std::to_string(a.size()) + " |b|=" +
                        std::to_string(b.size()) + " bound=" +
                        std::to_string(bound);
                    // Materializing form appends after a sentinel so
                    // base-offset handling is exercised too.
                    std::vector<Key> out = {12345};
                    const SetOpResult got =
                        runSetOp(kind, a, b, bound, &out);
                    expectSameResult(ref, got, what);
                    ASSERT_EQ(out.size(), ref_out.size() + 1) << what;
                    EXPECT_EQ(out.front(), 12345u) << what;
                    EXPECT_TRUE(std::equal(ref_out.begin(),
                                           ref_out.end(),
                                           out.begin() + 1))
                        << what;
                    // Counting form: identical work summary.
                    expectSameResult(
                        ref, runSetOpCount(kind, a, b, bound),
                        what + " (.C)");
                }
            }
        }
    }
}

TEST_P(KernelProperty, AliasedOperands)
{
    Rng rng(GetParam() * 977);
    const auto a = sortedRandom(rng, 300, 1000);
    for (const KernelLevel level : availableKernelLevels()) {
        ScopedKernelOverride forced(level);
        std::vector<Key> out;
        const auto inter =
            runSetOp(SetOpKind::Intersect, a, a, noBound, &out);
        EXPECT_EQ(inter.count, a.size());
        EXPECT_EQ(out, a);
        out.clear();
        const auto sub =
            runSetOp(SetOpKind::Subtract, a, a, noBound, &out);
        EXPECT_EQ(sub.count, 0u);
        EXPECT_TRUE(out.empty());
        out.clear();
        const auto mer = runSetOp(SetOpKind::Merge, a, a, noBound, &out);
        EXPECT_EQ(mer.count, a.size());
        EXPECT_EQ(out, a);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));

// ---------------- cycles-vs-wall-clock invariant ----------------

TEST(KernelCycles, GoldenTraceReplayInvariantAcrossLevels)
{
    const std::string path =
        std::string(SPARSECORE_TEST_DATA_DIR) + "/golden_trace.bin";
    const trace::Trace golden = trace::Trace::loadFile(path);
    const arch::SparseCoreConfig config;

    Cycles cpu_ref = 0, sc_ref = 0;
    bool first = true;
    for (const KernelLevel level : availableKernelLevels()) {
        ScopedKernelOverride forced(level);
        backend::CpuBackend cpu(config.core, config.mem);
        backend::SparseCoreBackend sc(config);
        const Cycles cpu_cycles = trace::replay(golden, cpu).cycles;
        const Cycles sc_cycles = trace::replay(golden, sc).cycles;
        if (first) {
            cpu_ref = cpu_cycles;
            sc_ref = sc_cycles;
            first = false;
            continue;
        }
        EXPECT_EQ(cpu_cycles, cpu_ref)
            << "CPU replay cycles moved at level "
            << kernelLevelName(level);
        EXPECT_EQ(sc_cycles, sc_ref)
            << "SparseCore replay cycles moved at level "
            << kernelLevelName(level);
    }
}

TEST(KernelCycles, MachineComparisonInvariantAcrossLevels)
{
    const auto g = test::randomTestGraph(120, 900, 7);
    api::Machine machine;

    std::uint64_t emb_ref = 0;
    Cycles cpu_ref = 0, sc_ref = 0;
    bool first = true;
    for (const KernelLevel level : availableKernelLevels()) {
        api::RunOptions opts;
        opts.kernel = level;
        const auto cmp = machine.compare(
            api::RunRequest::gpm(gpm::GpmApp::T, g, opts));
        if (first) {
            emb_ref = cmp.functionalResult;
            cpu_ref = cmp.baseline.cycles;
            sc_ref = cmp.accelerated.cycles;
            first = false;
            continue;
        }
        EXPECT_EQ(cmp.functionalResult, emb_ref)
            << kernelLevelName(level);
        EXPECT_EQ(cmp.baseline.cycles, cpu_ref)
            << kernelLevelName(level);
        EXPECT_EQ(cmp.accelerated.cycles, sc_ref)
            << kernelLevelName(level);
    }
}

TEST(KernelCycles, ParallelMiningDeterministicAcrossLevels)
{
    const auto g = test::randomTestGraph(150, 1200, 17);
    std::uint64_t emb_ref = 0;
    Cycles cyc_ref = 0;
    bool first = true;
    for (const KernelLevel level : availableKernelLevels()) {
        api::HostOptions host;
        host.kernel = level;
        const auto par = api::mineParallelSparseCore(
            gpm::GpmApp::C4, g, 3, arch::SparseCoreConfig{}, 1, host);
        if (first) {
            emb_ref = par.embeddings;
            cyc_ref = par.cycles;
            first = false;
            continue;
        }
        EXPECT_EQ(par.embeddings, emb_ref) << kernelLevelName(level);
        EXPECT_EQ(par.cycles, cyc_ref) << kernelLevelName(level);
    }
}
