/**
 * @file
 * Tests for the IEP (inclusion-exclusion) counting optimization: the
 * rewritten counts must equal the direct plans', and the rewrite must
 * be dramatically cheaper — the paper's flexibility argument (§1).
 */

#include <gtest/gtest.h>

#include "backend/cpu_backend.hh"
#include "backend/functional_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "gpm/apps.hh"
#include "gpm/iep.hh"
#include "test_util.hh"

using namespace sc;
using namespace sc::gpm;

TEST(Iep, ChainCountMatchesDirectPlan)
{
    for (std::uint64_t seed : {1, 2, 3, 4}) {
        const auto g = test::randomTestGraph(120, 900, seed);
        backend::FunctionalBackend be;
        PlanExecutor direct(g, be);
        const auto expect =
            direct.runMany(gpmAppPlans(GpmApp::TC)).embeddings;
        backend::FunctionalBackend be2;
        EXPECT_EQ(runThreeChainIep(g, be2).embeddings, expect)
            << "seed " << seed;
    }
}

TEST(Iep, MotifCountMatchesDirectPlan)
{
    const auto g = test::randomTestGraph(150, 1200, 9);
    backend::FunctionalBackend be;
    PlanExecutor direct(g, be);
    const auto expect =
        direct.runMany(gpmAppPlans(GpmApp::TM)).embeddings;
    backend::FunctionalBackend be2;
    EXPECT_EQ(runThreeMotifIep(g, be2).embeddings, expect);
}

TEST(Iep, MuchCheaperThanDirectOnSparseCore)
{
    const auto g = test::randomTestGraph(400, 8000, 11);
    backend::SparseCoreBackend direct_be;
    PlanExecutor direct(g, direct_be);
    const auto direct_res = direct.runMany(gpmAppPlans(GpmApp::TC));
    backend::SparseCoreBackend iep_be;
    const auto iep_res = runThreeChainIep(g, iep_be);
    EXPECT_EQ(iep_res.embeddings, direct_res.embeddings);
    EXPECT_LT(iep_res.cycles * 2, direct_res.cycles);
}

TEST(Iep, CpuBenefitsToo)
{
    // The optimization is pure software: every substrate can adopt
    // it (the point being that FlexMiner's fixed engine cannot).
    const auto g = test::randomTestGraph(400, 8000, 12);
    backend::CpuBackend direct_be;
    PlanExecutor direct(g, direct_be);
    const auto direct_res = direct.runMany(gpmAppPlans(GpmApp::TC));
    backend::CpuBackend iep_be;
    const auto iep_res = runThreeChainIep(g, iep_be);
    EXPECT_EQ(iep_res.embeddings, direct_res.embeddings);
    EXPECT_LT(iep_res.cycles, direct_res.cycles);
}
