/**
 * @file
 * Tests for the stream ISA: instruction encoding/printing, the
 * assembler, and functional interpreter semantics (SMT rules,
 * exceptions, EOS, value ops, GFR-driven nested intersection,
 * checkpoint rollback).
 */

#include <gtest/gtest.h>

#include "graph/graph_builder.hh"
#include "isa/assembler.hh"
#include "isa/interpreter.hh"
#include "test_util.hh"

using namespace sc;
using namespace sc::isa;

namespace {

/** Fixture owning a memory image with two key streams. */
class IsaFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        a = {1, 3, 5, 7, 9};
        b = {2, 3, 4, 7, 8};
        av = {1.0, 2.0, 3.0, 4.0, 5.0};
        bv = {10.0, 20.0, 30.0, 40.0, 50.0};
        mem.addSegment(0x1000, a.data(), a.size() * sizeof(Key));
        mem.addSegment(0x2000, b.data(), b.size() * sizeof(Key));
        mem.addSegment(0x3000, av.data(), av.size() * sizeof(Value));
        mem.addSegment(0x4000, bv.data(), bv.size() * sizeof(Value));
    }

    std::vector<Key> a, b;
    std::vector<Value> av, bv;
    MemoryImage mem;
};

} // namespace

TEST(StreamInst, Mnemonics)
{
    EXPECT_STREQ(opcodeName(Opcode::SInterC), "S_INTER.C");
    EXPECT_EQ(opcodeFromName("S_NESTINTER"), Opcode::SNestInter);
    EXPECT_EQ(opcodeFromName("bogus"), Opcode::NumOpcodes);
    EXPECT_TRUE(isStreamOpcode(Opcode::SRead));
    EXPECT_FALSE(isStreamOpcode(Opcode::Add));
}

TEST(StreamInst, ToStringRoundTrips)
{
    Inst inst;
    inst.op = Opcode::SInter;
    inst.r = {1, 2, 3, 4, 0};
    EXPECT_EQ(inst.toString(), "S_INTER r1, r2, r3, r4");
}

TEST(Assembler, ParsesProgramWithLabels)
{
    const Program p = assemble(R"(
        ; simple counted loop
        LI r1, 0
        LI r2, 5
    loop:
        ADDI r1, r1, 1
        BLT r1, r2, loop
        HALT
    )");
    ASSERT_EQ(p.size(), 5u);
    EXPECT_EQ(p[3].op, Opcode::Blt);
    EXPECT_EQ(p[3].imm, -1);
}

TEST(Assembler, RejectsBadInput)
{
    EXPECT_THROW(assemble("FROB r1"), AsmError);
    EXPECT_THROW(assemble("LI r1"), AsmError);
    EXPECT_THROW(assemble("LI r99, 0"), AsmError);
    EXPECT_THROW(assemble("S_VINTER r1, r2, r3, NOPE"), AsmError);
    EXPECT_THROW(assemble("x: x: LI r1, 0"), AsmError);
}

TEST(Assembler, DisassembleIsReadable)
{
    const Program p = assemble("LI r1, 7\nHALT");
    const std::string text = disassemble(p);
    EXPECT_NE(text.find("LI r1, 7"), std::string::npos);
    EXPECT_NE(text.find("HALT"), std::string::npos);
}

TEST_F(IsaFixture, ScalarLoop)
{
    Interpreter interp(mem);
    interp.run(assemble(R"(
        LI r1, 0
        LI r2, 10
        LI r3, 0
    loop:
        ADDI r3, r3, 2
        ADDI r1, r1, 1
        BLT r1, r2, loop
        HALT
    )"));
    EXPECT_EQ(interp.gpr(3), 20u);
}

TEST_F(IsaFixture, RegisterZeroIsHardwired)
{
    Interpreter interp(mem);
    interp.run(assemble("LI r0, 42\nHALT"));
    EXPECT_EQ(interp.gpr(0), 0u);
}

TEST_F(IsaFixture, IntersectCount)
{
    Interpreter interp(mem);
    // Stream 1 = a at 0x1000 (5 keys), stream 2 = b at 0x2000.
    interp.run(assemble(R"(
        LI r1, 0x1000
        LI r2, 5
        LI r3, 1      ; stream id 1
        LI r4, 0      ; priority
        S_READ r1, r2, r3, r4
        LI r5, 0x2000
        LI r6, 5
        LI r7, 2      ; stream id 2
        S_READ r5, r6, r7, r4
        LI r9, -1     ; unbounded
        S_INTER.C r3, r7, r8, r9
        S_FREE r3
        S_FREE r7
        HALT
    )"));
    EXPECT_EQ(interp.gpr(8), 2u); // {3, 7}
    EXPECT_EQ(interp.streams().activeCount(), 0u);
}

TEST_F(IsaFixture, IntersectProducesStreamAndFetch)
{
    Interpreter interp(mem);
    interp.run(assemble(R"(
        LI r1, 0x1000
        LI r2, 5
        LI r3, 1
        LI r4, 0
        S_READ r1, r2, r3, r4
        LI r5, 0x2000
        LI r6, 5
        LI r7, 2
        S_READ r5, r6, r7, r4
        LI r9, -1
        LI r10, 3     ; output stream id
        S_INTER r3, r7, r10, r9
        LI r11, 0
        S_FETCH r10, r11, r12   ; first element
        LI r11, 1
        S_FETCH r10, r11, r13   ; second element
        LI r11, 2
        S_FETCH r10, r11, r14   ; past the end -> EOS
        HALT
    )"));
    EXPECT_EQ(interp.gpr(12), 3u);
    EXPECT_EQ(interp.gpr(13), 7u);
    EXPECT_EQ(interp.gpr(14), endOfStream);
}

TEST_F(IsaFixture, BoundedIntersectEarlyTermination)
{
    Interpreter interp(mem);
    interp.run(assemble(R"(
        LI r1, 0x1000
        LI r2, 5
        LI r3, 1
        LI r4, 0
        S_READ r1, r2, r3, r4
        LI r5, 0x2000
        LI r6, 5
        LI r7, 2
        S_READ r5, r6, r7, r4
        LI r9, 5       ; bound: only keys < 5
        S_INTER.C r3, r7, r8, r9
        HALT
    )"));
    EXPECT_EQ(interp.gpr(8), 1u); // only {3}
}

TEST_F(IsaFixture, VInterMac)
{
    Interpreter interp(mem);
    interp.run(assemble(R"(
        LI r1, 0x1000
        LI r2, 5
        LI r3, 1
        LI r11, 0x3000
        LI r4, 0
        S_VREAD r1, r2, r3, r11, r4
        LI r5, 0x2000
        LI r7, 2
        LI r12, 0x4000
        S_VREAD r5, r2, r7, r12, r4
        S_VINTER r3, r7, r8, MAC
        HALT
    )"));
    // Matches at keys 3 (2.0*20.0) and 7 (4.0*40.0) = 40 + 160.
    EXPECT_DOUBLE_EQ(interp.gprAsDouble(8), 200.0);
}

TEST_F(IsaFixture, VMergeProducesScaledStream)
{
    Interpreter interp(mem);
    interp.run(assemble(R"(
        LI r1, 0x1000
        LI r2, 5
        LI r3, 1
        LI r11, 0x3000
        LI r4, 0
        S_VREAD r1, r2, r3, r11, r4
        LI r5, 0x2000
        LI r7, 2
        LI r12, 0x4000
        S_VREAD r5, r2, r7, r12, r4
        FLI f0, 2.0
        FLI f1, 3.0
        LI r10, 3
        S_VMERGE f0, f1, r3, r7, r10
        HALT
    )"));
    const auto &reg = interp.streams().lookup(3);
    const auto keys = interp.streams().keys(reg);
    const auto vals = interp.streams().values(reg);
    ASSERT_EQ(keys.size(), 8u); // union of {1,3,5,7,9} and {2,3,4,7,8}
    // Key 3 appears in both: 2*2.0 + 20*3.0 = 64.
    for (std::size_t i = 0; i < keys.size(); ++i) {
        if (keys[i] == 3) {
            EXPECT_DOUBLE_EQ(vals[i], 64.0);
        }
    }
}

TEST_F(IsaFixture, FreeUnknownStreamRaises)
{
    Interpreter interp(mem);
    EXPECT_THROW(interp.run(assemble("LI r1, 9\nS_FREE r1\nHALT")),
                 StreamException);
}

TEST_F(IsaFixture, FreeNeverAllocatedIsStructuredFault)
{
    Interpreter interp(mem);
    try {
        interp.run(assemble("LI r1, 9\nS_FREE r1\nHALT"));
        FAIL() << "expected StreamFault";
    } catch (const StreamFault &e) {
        EXPECT_EQ(e.kind(), StreamFault::Kind::FreeUnallocated);
        EXPECT_EQ(e.sid(), 9u);
        // The interpreter annotates faults with pc + instruction.
        const std::string what = e.what();
        EXPECT_NE(what.find("pc 1"), std::string::npos) << what;
        EXPECT_NE(what.find("S_FREE r1"), std::string::npos) << what;
    }
}

TEST_F(IsaFixture, DoubleFreeIsStructuredFault)
{
    Interpreter interp(mem);
    try {
        interp.run(assemble(R"(
            LI r1, 0x1000
            LI r2, 5
            LI r3, 1
            LI r4, 0
            S_READ r1, r2, r3, r4
            S_FREE r3
            S_FREE r3
            HALT
        )"));
        FAIL() << "expected StreamFault";
    } catch (const StreamFault &e) {
        EXPECT_EQ(e.kind(), StreamFault::Kind::DoubleFree);
        EXPECT_EQ(e.sid(), 1u);
        EXPECT_NE(std::string(e.what()).find("pc 6"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(IsaFixture, FetchOnFreedStreamIsUseAfterFreeFault)
{
    Interpreter interp(mem);
    try {
        // The fetch offset is past EOS too — the lifetime fault must
        // win over the EOS-returning path on a freed stream.
        interp.run(assemble(R"(
            LI r1, 0x1000
            LI r2, 5
            LI r3, 1
            LI r4, 0
            S_READ r1, r2, r3, r4
            S_FREE r3
            LI r5, 100
            S_FETCH r3, r5, r6
            HALT
        )"));
        FAIL() << "expected StreamFault";
    } catch (const StreamFault &e) {
        EXPECT_EQ(e.kind(), StreamFault::Kind::UseAfterFree);
        EXPECT_EQ(e.sid(), 1u);
        EXPECT_NE(std::string(e.what()).find("S_FETCH"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(IsaFixture, RedefiningFreedSidIsLiveAgain)
{
    Interpreter interp(mem);
    // free -> S_READ of the same sid -> free must NOT double-free.
    interp.run(assemble(R"(
        LI r1, 0x1000
        LI r2, 5
        LI r3, 1
        LI r4, 0
        S_READ r1, r2, r3, r4
        S_FREE r3
        S_READ r1, r2, r3, r4
        S_FREE r3
        HALT
    )"));
    EXPECT_EQ(interp.streams().activeCount(), 0u);
}

TEST_F(IsaFixture, VInterOnKeyStreamRaises)
{
    Interpreter interp(mem);
    EXPECT_THROW(interp.run(assemble(R"(
        LI r1, 0x1000
        LI r2, 5
        LI r3, 1
        LI r4, 0
        S_READ r1, r2, r3, r4
        S_READ r1, r2, r5, r4
        LI r5, 0
        S_VINTER r3, r5, r8, MAC
        HALT
    )")),
                 StreamException);
}

TEST_F(IsaFixture, RedefiningActiveSidOverwrites)
{
    Interpreter interp(mem);
    interp.run(assemble(R"(
        LI r1, 0x1000
        LI r2, 5
        LI r3, 1
        LI r4, 0
        S_READ r1, r2, r3, r4   ; sid 1 = stream a
        LI r1, 0x2000
        S_READ r1, r2, r3, r4   ; sid 1 overwritten with stream b
        LI r11, 0
        S_FETCH r3, r11, r12
        HALT
    )"));
    EXPECT_EQ(interp.gpr(12), 2u); // b[0]
    EXPECT_EQ(interp.streams().activeCount(), 1u);
}

TEST_F(IsaFixture, StreamRegisterExhaustionRaises)
{
    Interpreter interp(mem);
    Program p = assemble(R"(
        LI r1, 0x1000
        LI r2, 5
        LI r4, 0
        LI r3, 0
        LI r5, 17
    loop:
        S_READ r1, r2, r3, r4
        ADDI r3, r3, 1
        BLT r3, r5, loop
        HALT
    )");
    EXPECT_THROW(interp.run(p), StreamException);
}

TEST(IsaNested, NestedIntersectCountsTriangles)
{
    // Triangle counting entirely in assembly: per vertex v, stream =
    // N(v) below v, then S_NESTINTER accumulates the count.
    const auto g = test::randomTestGraph(40, 160, 3);
    MemoryImage mem;
    mem.addSegment(g.vertexArrayBase(), g.offsets().data(),
                   g.offsets().size() * sizeof(std::uint64_t));
    mem.addSegment(g.edgeArrayBase(), g.edges().data(),
                   g.edges().size() * sizeof(VertexId));
    // The CSR offset (above-offset) array for GFR2.
    std::vector<std::uint32_t> above(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        above[v] = g.aboveOffset(v);
    const Addr above_base = 0x7000000000ull;
    mem.addSegment(above_base, above.data(),
                   above.size() * sizeof(std::uint32_t));

    Interpreter interp(mem);
    std::uint64_t total = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        interp.setGpr(1, g.edgeListAddr(v));
        interp.setGpr(2, g.aboveOffset(v)); // keys below v
        interp.setGpr(3, 1);
        interp.setGpr(4, 0);
        interp.setGpr(20, g.vertexArrayBase());
        interp.setGpr(21, g.edgeArrayBase());
        interp.setGpr(22, above_base);
        interp.run(assemble(R"(
            S_LD_GFR r20, r21, r22
            S_READ r1, r2, r3, r4
            S_NESTINTER r3, r5
            S_FREE r3
            HALT
        )"));
        total += interp.gpr(5);
    }
    EXPECT_EQ(total,
              test::bruteForceCount(g, gpm::Pattern::triangle(), true));
}

TEST_F(IsaFixture, NestedIntersectRollsBackOnException)
{
    Interpreter interp(mem);
    // GFRs left unloaded: S_NESTINTER must raise and the stream
    // state must roll back to the checkpoint (stream 1 still live).
    Program p = assemble(R"(
        LI r1, 0x1000
        LI r2, 5
        LI r3, 1
        LI r4, 0
        S_READ r1, r2, r3, r4
        S_NESTINTER r3, r5
        HALT
    )");
    EXPECT_THROW(interp.run(p), StreamException);
    EXPECT_TRUE(interp.streams().isMapped(1));
    EXPECT_EQ(interp.streams().activeCount(), 1u);
}

TEST_F(IsaFixture, InstructionCountsTracked)
{
    Interpreter interp(mem);
    interp.run(assemble(R"(
        LI r1, 0x1000
        LI r2, 5
        LI r3, 1
        LI r4, 0
        S_READ r1, r2, r3, r4
        S_FREE r3
        HALT
    )"));
    EXPECT_EQ(interp.streamInstructions(), 2u);
    EXPECT_EQ(interp.opcodeCounts().get("S_READ"), 1u);
    EXPECT_EQ(interp.opcodeCounts().get("LI"), 4u);
}
