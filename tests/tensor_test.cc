/**
 * @file
 * Tests for the tensor substrate: sparse matrices, CSF tensors,
 * generators, dataset registry, and reference kernels.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "tensor/csf_tensor.hh"
#include "tensor/reference_kernels.hh"
#include "tensor/sparse_matrix.hh"
#include "tensor/tensor_datasets.hh"
#include "tensor/tensor_gen.hh"

using namespace sc;
using namespace sc::tensor;

TEST(SparseMatrix, TripletsSortedAndSummed)
{
    const SparseMatrix m = SparseMatrix::fromTriplets(
        3, 3, {{1, 2, 1.0}, {1, 0, 2.0}, {1, 2, 3.0}, {0, 1, 5.0}});
    EXPECT_EQ(m.nnz(), 3u); // duplicate (1,2) summed
    auto keys = m.rowKeys(1);
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], 0u);
    EXPECT_EQ(keys[1], 2u);
    EXPECT_DOUBLE_EQ(m.rowVals(1)[1], 4.0);
}

TEST(SparseMatrix, RejectsOutOfRange)
{
    EXPECT_THROW(SparseMatrix::fromTriplets(2, 2, {{2, 0, 1.0}}),
                 SimError);
}

TEST(SparseMatrix, TransposeRoundTrip)
{
    Rng rng(1);
    std::vector<Triplet> trips;
    for (int i = 0; i < 50; ++i)
        trips.push_back({static_cast<std::uint32_t>(rng.below(10)),
                         static_cast<std::uint32_t>(rng.below(12)),
                         rng.uniform() + 0.1});
    const SparseMatrix m =
        SparseMatrix::fromTriplets(10, 12, trips);
    const SparseMatrix mtt = m.transpose().transpose();
    EXPECT_EQ(m.maxAbsDiff(mtt), 0.0);
    EXPECT_EQ(m.transpose().rows(), 12u);
}

TEST(SparseMatrix, DenseExpansion)
{
    const SparseMatrix m =
        SparseMatrix::fromTriplets(2, 2, {{0, 1, 3.0}, {1, 0, 4.0}});
    const auto d = m.toDense();
    EXPECT_DOUBLE_EQ(d[1], 3.0);
    EXPECT_DOUBLE_EQ(d[2], 4.0);
    EXPECT_DOUBLE_EQ(d[0], 0.0);
}

TEST(CsfTensor, FiberStructure)
{
    const CsfTensor t = CsfTensor::fromEntries(
        3, 4, 5,
        {{0, 1, 2, 1.0}, {0, 1, 4, 2.0}, {0, 3, 0, 3.0},
         {2, 0, 1, 4.0}});
    EXPECT_EQ(t.numSlices(), 2u); // i = 0 and i = 2
    EXPECT_EQ(t.sliceRoot(0), 0u);
    EXPECT_EQ(t.sliceRoot(1), 2u);
    auto fibers0 = t.sliceFiberKeys(0);
    ASSERT_EQ(fibers0.size(), 2u); // j = 1 and j = 3
    auto fiber = t.fiberKeys(t.fiberBegin(0));
    ASSERT_EQ(fiber.size(), 2u);
    EXPECT_EQ(fiber[0], 2u);
    EXPECT_EQ(fiber[1], 4u);
    EXPECT_EQ(t.nnz(), 4u);
}

TEST(CsfTensor, DuplicatesSummed)
{
    const CsfTensor t = CsfTensor::fromEntries(
        2, 2, 2, {{0, 0, 0, 1.0}, {0, 0, 0, 2.5}});
    EXPECT_EQ(t.nnz(), 1u);
    EXPECT_DOUBLE_EQ(t.fiberVals(0)[0], 3.5);
}

TEST(TensorGen, DensityAndDeterminism)
{
    const SparseMatrix a =
        generateMatrix(500, 500, 5000, MatrixStructure::Uniform, 9);
    EXPECT_GT(a.nnz(), 4500u);
    EXPECT_LE(a.nnz(), 5000u);
    const SparseMatrix b =
        generateMatrix(500, 500, 5000, MatrixStructure::Uniform, 9);
    EXPECT_EQ(a.maxAbsDiff(b), 0.0);
}

TEST(TensorGen, BandedStructureIsBanded)
{
    const SparseMatrix m =
        generateMatrix(400, 400, 4000, MatrixStructure::Banded, 3);
    // Every nnz lies within the generator's band (6x headroom plus
    // the half-band offset) around the diagonal.
    const std::int64_t band = 6 * 4000 / 400 + 8;
    for (std::uint32_t r = 0; r < m.rows(); ++r)
        for (Key c : m.rowKeys(r))
            EXPECT_LE(std::abs(static_cast<std::int64_t>(c) -
                               static_cast<std::int64_t>(r)),
                      band);
}

TEST(TensorGen, ColumnSkewHasHotColumns)
{
    const SparseMatrix m = generateMatrix(
        1000, 1000, 20000, MatrixStructure::ColumnSkewed, 5);
    const SparseMatrix mt = m.transpose();
    std::uint64_t hot = 0;
    for (std::uint32_t c = 0; c < 50; ++c)
        hot += mt.rowNnz(c);
    // 5% of columns should hold well over a third of the non-zeros.
    EXPECT_GT(hot * 3, m.nnz());
}

TEST(TensorDatasets, RegistryMatchesTableFive)
{
    EXPECT_EQ(matrixDatasets().size(), 11u);
    EXPECT_EQ(tensorDatasets().size(), 2u);
    const auto &t = matrixDataset("T");
    EXPECT_EQ(t.rows, 18696u);
    EXPECT_EQ(t.nnz, 4396289u);
    EXPECT_THROW(matrixDataset("nope"), SimError);
}

TEST(TensorDatasets, LoadedMatrixMatchesSpec)
{
    const SparseMatrix &m = loadMatrix("C"); // Circuit204
    EXPECT_EQ(m.rows(), 1020u);
    EXPECT_GT(m.nnz(), 5000u);
    // Memoized.
    EXPECT_EQ(&loadMatrix("C"), &m);
}

TEST(ReferenceKernels, SpmspmMatchesDense)
{
    Rng rng(4);
    const SparseMatrix a =
        generateMatrix(30, 40, 200, MatrixStructure::Uniform, 10);
    const SparseMatrix b =
        generateMatrix(40, 25, 180, MatrixStructure::Uniform, 11);
    const SparseMatrix c = referenceSpmspm(a, b);

    const auto da = a.toDense();
    const auto db = b.toDense();
    const auto dc = c.toDense();
    for (std::uint32_t i = 0; i < 30; ++i)
        for (std::uint32_t j = 0; j < 25; ++j) {
            double expect = 0;
            for (std::uint32_t k = 0; k < 40; ++k)
                expect += da[i * 40 + k] * db[k * 25 + j];
            EXPECT_NEAR(dc[i * 25 + j], expect, 1e-9);
        }
}

TEST(ReferenceKernels, SpmspmShapeMismatch)
{
    const SparseMatrix a =
        generateMatrix(4, 5, 6, MatrixStructure::Uniform, 1);
    const SparseMatrix b =
        generateMatrix(4, 5, 6, MatrixStructure::Uniform, 2);
    EXPECT_THROW(referenceSpmspm(a, b), SimError);
}

TEST(ReferenceKernels, TtvMatchesManual)
{
    const CsfTensor t = CsfTensor::fromEntries(
        2, 2, 3,
        {{0, 0, 0, 1.0}, {0, 0, 2, 2.0}, {1, 1, 1, 3.0}});
    const std::vector<Value> v = {10.0, 20.0, 30.0};
    const SparseMatrix z = referenceTtv(t, v);
    const auto d = z.toDense();
    EXPECT_DOUBLE_EQ(d[0], 1.0 * 10 + 2.0 * 30); // Z(0,0)
    EXPECT_DOUBLE_EQ(d[3], 3.0 * 20);            // Z(1,1)
}

TEST(ReferenceKernels, TtmMatchesManual)
{
    const CsfTensor t =
        CsfTensor::fromEntries(1, 1, 3, {{0, 0, 0, 2.0},
                                         {0, 0, 2, 3.0}});
    const SparseMatrix b = SparseMatrix::fromTriplets(
        2, 3, {{0, 0, 1.0}, {0, 2, 1.0}, {1, 1, 5.0}});
    const CsfTensor z = referenceTtm(t, b);
    // Z(0,0,0) = 2*1 + 3*1 = 5; Z(0,0,1) = 0 (no overlap).
    EXPECT_EQ(z.nnz(), 1u);
    EXPECT_DOUBLE_EQ(z.fiberVals(0)[0], 5.0);
}
