/**
 * @file
 * Shared helpers for the test suite: small deterministic graphs,
 * brute-force embedding counting, and convenience builders.
 */

#ifndef SPARSECORE_TESTS_TEST_UTIL_HH
#define SPARSECORE_TESTS_TEST_UTIL_HH

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hh"
#include "gpm/pattern.hh"

namespace sc::test {

/** Brute-force count of pattern embeddings (distinct vertex sets
 *  whose induced/edge-induced subgraph matches). Exponential; only
 *  for graphs with <= ~40 vertices. */
std::uint64_t bruteForceCount(const graph::CsrGraph &g,
                              const gpm::Pattern &p,
                              bool vertex_induced);

/** A deterministic random graph for property tests. */
graph::CsrGraph randomTestGraph(VertexId n, std::uint64_t edges,
                                std::uint64_t seed);

/** The 7-vertex example graph of the paper's Fig. 1(b). */
graph::CsrGraph figureOneGraph();

} // namespace sc::test

#endif // SPARSECORE_TESTS_TEST_UTIL_HH
