/**
 * @file
 * GPM correctness: every application's symmetry-broken embedding
 * count must equal the brute-force count, on hand-built graphs and on
 * random property-test graphs. Backends must agree with each other.
 */

#include <gtest/gtest.h>

#include "backend/cpu_backend.hh"
#include "backend/functional_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "graph/graph_builder.hh"
#include "gpm/apps.hh"
#include "gpm/executor.hh"
#include "gpm/planner.hh"
#include "test_util.hh"

using namespace sc;
using namespace sc::gpm;

namespace {

std::uint64_t
countWith(backend::ExecBackend &be, GpmApp app,
          const graph::CsrGraph &g)
{
    PlanExecutor executor(g, be);
    return executor.runMany(gpmAppPlans(app)).embeddings;
}

std::uint64_t
functionalCount(GpmApp app, const graph::CsrGraph &g)
{
    backend::FunctionalBackend be;
    return countWith(be, app, g);
}

} // namespace

TEST(GpmCorrectness, TriangleOnFigureOneGraph)
{
    // Fig. 1: the example graph contains exactly one triangle.
    const auto g = test::figureOneGraph();
    EXPECT_EQ(functionalCount(GpmApp::T, g), 1u);
    EXPECT_EQ(functionalCount(GpmApp::TS, g), 1u);
}

TEST(GpmCorrectness, CliqueOnCompleteGraph)
{
    // K6: C(6,3)=20 triangles, C(6,4)=15 4-cliques, C(6,5)=6.
    std::vector<graph::Edge> edges;
    for (VertexId u = 0; u < 6; ++u)
        for (VertexId v = u + 1; v < 6; ++v)
            edges.push_back({u, v});
    const auto g = graph::buildCsr(6, edges, "k6");
    EXPECT_EQ(functionalCount(GpmApp::T, g), 20u);
    EXPECT_EQ(functionalCount(GpmApp::C4, g), 15u);
    EXPECT_EQ(functionalCount(GpmApp::C5, g), 6u);
    EXPECT_EQ(functionalCount(GpmApp::C4S, g), 15u);
    EXPECT_EQ(functionalCount(GpmApp::C5S, g), 6u);
}

TEST(GpmCorrectness, ChainOnStarGraph)
{
    // A star with 4 leaves: C(4,2)=6 wedges, no triangles, and no
    // tailed triangles.
    const auto g = graph::buildCsr(
        5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}}, "star4");
    EXPECT_EQ(functionalCount(GpmApp::TC, g), 6u);
    EXPECT_EQ(functionalCount(GpmApp::T, g), 0u);
    EXPECT_EQ(functionalCount(GpmApp::TT, g), 0u);
}

TEST(GpmCorrectness, ChainIsVertexInduced)
{
    // A triangle has 0 vertex-induced 3-chains (the ends are always
    // adjacent).
    const auto g =
        graph::buildCsr(3, {{0, 1}, {1, 2}, {0, 2}}, "k3");
    EXPECT_EQ(functionalCount(GpmApp::TC, g), 0u);
    EXPECT_EQ(functionalCount(GpmApp::T, g), 1u);
}

TEST(GpmCorrectness, TailedTriangleHandBuilt)
{
    // Triangle {0,1,2} with a tail 3 attached to vertex 1: exactly
    // one tailed triangle.
    const auto g = graph::buildCsr(
        4, {{0, 1}, {1, 2}, {0, 2}, {1, 3}}, "tt");
    EXPECT_EQ(functionalCount(GpmApp::TT, g), 1u);
}

TEST(GpmCorrectness, TailedTriangleAllAttachments)
{
    // Triangle {0,1,2}; tails on every triangle vertex: 3, 4, 5
    // attached to 0, 1, 2 -> three tailed triangles.
    const auto g = graph::buildCsr(6,
                                   {{0, 1},
                                    {1, 2},
                                    {0, 2},
                                    {0, 3},
                                    {1, 4},
                                    {2, 5}},
                                   "tt3");
    EXPECT_EQ(functionalCount(GpmApp::TT, g), 3u);
}

TEST(GpmCorrectness, MotifCombinesTriangleAndChain)
{
    const auto g = test::randomTestGraph(30, 90, 5);
    const auto tm = functionalCount(GpmApp::TM, g);
    const auto t = functionalCount(GpmApp::T, g);
    const auto tc = functionalCount(GpmApp::TC, g);
    EXPECT_EQ(tm, t + tc);
}

// ---------------- property tests against brute force ----------------

class GpmBruteForce : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    graph::CsrGraph
    makeGraph() const
    {
        // Dense-ish small graphs exercise every code path.
        return test::randomTestGraph(16 + GetParam() % 7,
                                     40 + GetParam() % 60,
                                     GetParam() * 977);
    }
};

TEST_P(GpmBruteForce, Triangle)
{
    const auto g = makeGraph();
    const auto expect =
        test::bruteForceCount(g, Pattern::triangle(), true);
    EXPECT_EQ(functionalCount(GpmApp::T, g), expect);
    EXPECT_EQ(functionalCount(GpmApp::TS, g), expect);
}

TEST_P(GpmBruteForce, ThreeChain)
{
    const auto g = makeGraph();
    EXPECT_EQ(functionalCount(GpmApp::TC, g),
              test::bruteForceCount(g, Pattern::threeChain(), true));
}

TEST_P(GpmBruteForce, TailedTriangle)
{
    const auto g = makeGraph();
    EXPECT_EQ(
        functionalCount(GpmApp::TT, g),
        test::bruteForceCount(g, Pattern::tailedTriangle(), true));
}

TEST_P(GpmBruteForce, FourClique)
{
    const auto g = makeGraph();
    const auto expect =
        test::bruteForceCount(g, Pattern::clique(4), true);
    EXPECT_EQ(functionalCount(GpmApp::C4, g), expect);
    EXPECT_EQ(functionalCount(GpmApp::C4S, g), expect);
}

TEST_P(GpmBruteForce, FiveClique)
{
    const auto g = makeGraph();
    const auto expect =
        test::bruteForceCount(g, Pattern::clique(5), true);
    EXPECT_EQ(functionalCount(GpmApp::C5, g), expect);
    EXPECT_EQ(functionalCount(GpmApp::C5S, g), expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpmBruteForce,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------- cross-backend agreement ----------------

class GpmBackendAgreement
    : public ::testing::TestWithParam<GpmApp>
{
};

TEST_P(GpmBackendAgreement, AllBackendsSameCount)
{
    const auto g = test::randomTestGraph(60, 400, 42);
    backend::FunctionalBackend functional;
    backend::CpuBackend cpu;
    backend::SparseCoreBackend sparsecore;
    const auto expect = countWith(functional, GetParam(), g);
    EXPECT_EQ(countWith(cpu, GetParam(), g), expect);
    EXPECT_EQ(countWith(sparsecore, GetParam(), g), expect);
}

TEST_P(GpmBackendAgreement, NoStreamLeaks)
{
    const auto g = test::randomTestGraph(40, 150, 7);
    backend::FunctionalBackend be;
    countWith(be, GetParam(), g);
    EXPECT_EQ(be.liveStreams(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, GpmBackendAgreement,
    ::testing::Values(GpmApp::T, GpmApp::TS, GpmApp::TC, GpmApp::TT,
                      GpmApp::TM, GpmApp::C4, GpmApp::C4S, GpmApp::C5,
                      GpmApp::C5S),
    [](const ::testing::TestParamInfo<GpmApp> &info) {
        std::string name = gpmAppName(info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });
