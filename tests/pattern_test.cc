/**
 * @file
 * Tests for patterns, automorphisms, canonical codes, and symmetry-
 * breaking restriction generation.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "gpm/isomorphism.hh"
#include "gpm/pattern.hh"

using namespace sc;
using namespace sc::gpm;

TEST(Pattern, Factories)
{
    EXPECT_EQ(Pattern::triangle().numEdges(), 3u);
    EXPECT_EQ(Pattern::threeChain().numEdges(), 2u);
    EXPECT_EQ(Pattern::tailedTriangle().numEdges(), 4u);
    EXPECT_EQ(Pattern::clique(5).numEdges(), 10u);
    EXPECT_EQ(Pattern::path(4).numEdges(), 3u);
    EXPECT_EQ(Pattern::star(3).numEdges(), 3u);
    EXPECT_EQ(Pattern::star(3).numVertices(), 4u);
}

TEST(Pattern, Connectivity)
{
    EXPECT_TRUE(Pattern::clique(4).isConnected());
    Pattern disconnected(4);
    disconnected.addEdge(0, 1);
    disconnected.addEdge(2, 3);
    EXPECT_FALSE(disconnected.isConnected());
}

TEST(Pattern, RejectsBadEdges)
{
    Pattern p(3);
    EXPECT_THROW(p.addEdge(0, 0), SimError);
    EXPECT_THROW(p.addEdge(0, 3), SimError);
}

TEST(Isomorphism, AutomorphismCounts)
{
    // The counts the paper quotes for TrieJax redundancy: 6/24/120.
    EXPECT_EQ(automorphisms(Pattern::triangle()).size(), 6u);
    EXPECT_EQ(automorphisms(Pattern::clique(4)).size(), 24u);
    EXPECT_EQ(automorphisms(Pattern::clique(5)).size(), 120u);
    EXPECT_EQ(automorphisms(Pattern::threeChain()).size(), 2u);
    EXPECT_EQ(automorphisms(Pattern::tailedTriangle()).size(), 2u);
    EXPECT_EQ(automorphisms(Pattern::star(3)).size(), 6u);
    EXPECT_EQ(automorphisms(Pattern::path(4)).size(), 2u);
}

TEST(Isomorphism, IsomorphicDetectsRelabeling)
{
    Pattern a(4, "p1");
    a.addEdge(0, 1);
    a.addEdge(1, 2);
    a.addEdge(2, 3);
    Pattern b(4, "p2");
    b.addEdge(3, 2);
    b.addEdge(2, 0);
    b.addEdge(0, 1);
    EXPECT_TRUE(isomorphic(a, b)); // both are 4-paths
    EXPECT_FALSE(isomorphic(a, Pattern::star(3)));
    EXPECT_FALSE(isomorphic(a, Pattern::triangle()));
}

TEST(Isomorphism, CanonicalCodesAgree)
{
    Pattern a(4);
    a.addEdge(0, 1);
    a.addEdge(1, 2);
    a.addEdge(2, 3);
    EXPECT_EQ(canonicalCode(a), canonicalCode(Pattern::path(4)));
    EXPECT_NE(canonicalCode(Pattern::path(4)),
              canonicalCode(Pattern::star(3)));
    EXPECT_NE(canonicalCode(Pattern::triangle()),
              canonicalCode(Pattern::threeChain()));
}

TEST(Isomorphism, TriangleRestrictionsAreDescending)
{
    const auto r = symmetryRestrictions(Pattern::triangle());
    // v0 > v1 > v2 (all pairs).
    EXPECT_EQ(r.size(), 3u);
    for (const auto &[a, b] : r)
        EXPECT_LT(a, b); // earlier position dominates later
}

TEST(Isomorphism, TailedTriangleRestrictionMatchesPaper)
{
    // Fig. 2: the only restriction is v2 < v0 (pattern vertices 0 and
    // 2 are the symmetric pair).
    const auto r = symmetryRestrictions(Pattern::tailedTriangle());
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0].first, 0u);
    EXPECT_EQ(r[0].second, 2u);
}

TEST(Isomorphism, ChainRestriction)
{
    const auto r = symmetryRestrictions(Pattern::threeChain());
    ASSERT_EQ(r.size(), 1u);
    // Ends are pattern vertices 0 and 2.
    EXPECT_EQ(r[0].first, 0u);
    EXPECT_EQ(r[0].second, 2u);
}
