/**
 * @file
 * The ArtifactStore's contract: cached and cold paths are
 * bit-identical in functional results and simulated cycles (run(),
 * compare(), the host-parallel miners), artifacts are content-keyed
 * (two structurally identical graph objects share one trace), the
 * byte budget evicts LRU entries while pinned in-use artifacts
 * survive, and concurrent requests build each artifact exactly once.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "api/artifact_store.hh"
#include "api/machine.hh"
#include "api/parallel.hh"
#include "gpm/executor.hh"
#include "graph/generators.hh"

using namespace sc;
using namespace sc::api;

namespace {

/** Per-test seeds: each test gets a structurally distinct graph, so
 *  its first cache-on access is genuinely cold no matter which tests
 *  ran before it in this process (the store is process-wide). */
graph::CsrGraph
testGraph(std::uint64_t seed)
{
    return graph::generateChungLu(600, 7000, 150, 2.0, seed, "store");
}

RunOptions
withCache(bool enabled)
{
    RunOptions options;
    options.artifactCache = enabled;
    return options;
}

ArtifactStore::CaptureFn
gpmCapture(const graph::CsrGraph &g, gpm::GpmApp app)
{
    return [&g, app](trace::TraceRecorder &recorder) {
        gpm::PlanExecutor executor(g, recorder);
        return executor.runMany(gpm::gpmAppPlans(app)).embeddings;
    };
}

} // namespace

TEST(ArtifactStore, CompareColdWarmBitIdentical)
{
    Machine machine;
    const auto g = testGraph(101);
    const auto off = machine.compare(
        RunRequest::gpm(gpm::GpmApp::T, g, withCache(false)));
    const auto cold = machine.compare(
        RunRequest::gpm(gpm::GpmApp::T, g, withCache(true)));
    const auto warm = machine.compare(
        RunRequest::gpm(gpm::GpmApp::T, g, withCache(true)));

    // Same result, same cycles, same breakdowns — the store only
    // moves host wall-clock.
    for (const auto *cmp : {&cold, &warm}) {
        EXPECT_EQ(cmp->functionalResult, off.functionalResult);
        EXPECT_EQ(cmp->baseline.cycles, off.baseline.cycles);
        EXPECT_EQ(cmp->accelerated.cycles, off.accelerated.cycles);
        EXPECT_EQ(cmp->trace.events, off.trace.events);
    }
    EXPECT_FALSE(cold.trace.traceCacheHit);
    EXPECT_TRUE(warm.trace.traceCacheHit);
}

TEST(ArtifactStore, RunColdWarmBitIdentical)
{
    Machine machine;
    const auto g = testGraph(102);
    for (const Substrate substrate :
         {Substrate::Cpu, Substrate::SparseCore}) {
        const auto off = machine.run(
            RunRequest::gpm(gpm::GpmApp::TT, g, withCache(false)),
            substrate);
        const auto cold = machine.run(
            RunRequest::gpm(gpm::GpmApp::TT, g, withCache(true)),
            substrate);
        const auto warm = machine.run(
            RunRequest::gpm(gpm::GpmApp::TT, g, withCache(true)),
            substrate);
        EXPECT_EQ(cold.functionalResult, off.functionalResult);
        EXPECT_EQ(warm.functionalResult, off.functionalResult);
        EXPECT_EQ(cold.cycles, off.cycles);
        EXPECT_EQ(warm.cycles, off.cycles);
    }
}

TEST(ArtifactStore, FsmColdWarmBitIdentical)
{
    Machine machine;
    const auto lg = graph::LabeledGraph::withRandomLabels(
        testGraph(103), 4, 77);
    const auto off =
        machine.compare(RunRequest::fsm(lg, 2, withCache(false)));
    const auto warm1 =
        machine.compare(RunRequest::fsm(lg, 2, withCache(true)));
    const auto warm2 =
        machine.compare(RunRequest::fsm(lg, 2, withCache(true)));
    EXPECT_EQ(warm1.functionalResult, off.functionalResult);
    EXPECT_EQ(warm2.functionalResult, off.functionalResult);
    EXPECT_EQ(warm1.baseline.cycles, off.baseline.cycles);
    EXPECT_EQ(warm2.baseline.cycles, off.baseline.cycles);
    EXPECT_EQ(warm1.accelerated.cycles, off.accelerated.cycles);
    EXPECT_EQ(warm2.accelerated.cycles, off.accelerated.cycles);
    EXPECT_TRUE(warm2.trace.traceCacheHit);
}

TEST(ArtifactStore, ContentKeyedAcrossGraphObjects)
{
    // Two distinct CsrGraph objects with identical content share one
    // cache entry: the key is the content fingerprint, not the
    // object address.
    Machine machine;
    const auto g1 = testGraph(104);
    const auto g2 = testGraph(104);
    ASSERT_EQ(g1.fingerprint(), g2.fingerprint());

    const auto first = machine.compare(
        RunRequest::gpm(gpm::GpmApp::C4, g1, withCache(true)));
    const auto second = machine.compare(
        RunRequest::gpm(gpm::GpmApp::C4, g2, withCache(true)));
    EXPECT_TRUE(second.trace.traceCacheHit);
    EXPECT_EQ(second.functionalResult, first.functionalResult);
    EXPECT_EQ(second.baseline.cycles, first.baseline.cycles);
    EXPECT_EQ(second.accelerated.cycles, first.accelerated.cycles);
}

TEST(ArtifactStore, ParallelMiningColdWarmBitIdentical)
{
    const auto g = testGraph(105);
    HostOptions off;
    off.artifactCache = false;
    HostOptions on;
    on.artifactCache = true;

    const auto r_off =
        mineParallelSparseCore(gpm::GpmApp::T, g, 4, {}, 1, off);
    const auto r_cold =
        mineParallelSparseCore(gpm::GpmApp::T, g, 4, {}, 1, on);
    const auto r_warm =
        mineParallelSparseCore(gpm::GpmApp::T, g, 4, {}, 1, on);
    for (const auto *r : {&r_cold, &r_warm}) {
        EXPECT_EQ(r->embeddings, r_off.embeddings);
        EXPECT_EQ(r->cycles, r_off.cycles);
        EXPECT_EQ(r->perCore, r_off.perCore);
    }

    const auto c_off =
        compareParallelGpm(gpm::GpmApp::T, g, 4, {}, 1, off);
    const auto c_warm =
        compareParallelGpm(gpm::GpmApp::T, g, 4, {}, 1, on);
    EXPECT_EQ(c_warm.functionalResult, c_off.functionalResult);
    EXPECT_EQ(c_warm.baseline.cycles, c_off.baseline.cycles);
    EXPECT_EQ(c_warm.accelerated.cycles, c_off.accelerated.cycles);
}

TEST(ArtifactStore, WarmHitsSkipCaptureAndCompile)
{
    // Stats-level proof of the build-once contract: the second
    // compare() of one (app, dataset) adds a trace hit and a program
    // hit, and no new misses.
    Machine machine;
    const auto g = testGraph(106);
    RunOptions options = withCache(true);
    options.replayMode = trace::ReplayMode::Bytecode;

    machine.compare(RunRequest::gpm(gpm::GpmApp::TC, g, options));
    const auto before = ArtifactStore::global().stats();
    machine.compare(RunRequest::gpm(gpm::GpmApp::TC, g, options));
    const auto after = ArtifactStore::global().stats();
    EXPECT_EQ(after.traces.misses, before.traces.misses);
    EXPECT_EQ(after.programs.misses, before.programs.misses);
    EXPECT_EQ(after.traces.hits, before.traces.hits + 1);
    EXPECT_EQ(after.programs.hits, before.programs.hits + 1);
}

TEST(ArtifactStore, EvictionBoundsBytesButPinsInUseArtifacts)
{
    // A 1-byte store: everything is over budget. A trace the caller
    // still holds must survive arbitrary pressure; unreferenced ones
    // are evicted as new artifacts arrive.
    ArtifactStore store(1);
    const auto g = testGraph(107);

    const auto pinned =
        store.trace("pin", gpmCapture(g, gpm::GpmApp::T));
    ASSERT_NE(pinned, nullptr);
    store.trace("b", gpmCapture(g, gpm::GpmApp::TT));
    store.trace("c", gpmCapture(g, gpm::GpmApp::TC));

    const auto mid = store.stats();
    EXPECT_GE(mid.traces.evictions, 1u);

    // The pinned trace is still resident (a hit, not a rebuild) ...
    store.trace("pin", gpmCapture(g, gpm::GpmApp::T));
    const auto after_pin = store.stats();
    EXPECT_EQ(after_pin.traces.hits, mid.traces.hits + 1);
    EXPECT_EQ(after_pin.traces.misses, mid.traces.misses);

    // ... while the unpinned one was dropped and rebuilds on demand.
    store.trace("b", gpmCapture(g, gpm::GpmApp::TT));
    const auto after_b = store.stats();
    EXPECT_EQ(after_b.traces.misses, after_pin.traces.misses + 1);
}

TEST(ArtifactStore, ConcurrentRequestsCaptureOnce)
{
    // Threads hammering the same keys: each (key) capture runs
    // exactly once; everyone shares the result. Runs under TSan in
    // check.sh.
    ArtifactStore store(0);
    const auto g = testGraph(108);
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    std::vector<std::uint64_t> results(kThreads, 0);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            const auto cached =
                store.trace("shared", gpmCapture(g, gpm::GpmApp::T));
            const auto bc = store.program("shared", cached->trace);
            results[t] = cached->functionalResult + bc->codeBytes();
        });
    }
    for (auto &th : threads)
        th.join();
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(results[t], results[0]);
    const auto stats = store.stats();
    EXPECT_EQ(stats.traces.misses, 1u);
    EXPECT_EQ(stats.programs.misses, 1u);
    EXPECT_EQ(stats.traces.hits,
              static_cast<std::uint64_t>(kThreads) - 1);
}

TEST(ArtifactStore, EnvDefaultAndOverridesResolve)
{
    // An explicit override beats whatever SC_ARTIFACT_CACHE says;
    // nullopt falls through to the environment default.
    EXPECT_EQ(ArtifactStore::resolveEnabled(std::nullopt),
              ArtifactStore::enabledByDefault());
    EXPECT_TRUE(ArtifactStore::resolveEnabled(true));
    EXPECT_FALSE(ArtifactStore::resolveEnabled(false));
}

TEST(ArtifactStore, KeysEncodeContentAndVersions)
{
    const auto g1 = testGraph(109);
    const auto g2 = testGraph(110);
    const auto k1 = ArtifactStore::gpmTraceKey(gpm::GpmApp::T, g1, 1);
    const auto k2 = ArtifactStore::gpmTraceKey(gpm::GpmApp::T, g2, 1);
    EXPECT_NE(k1, k2); // different content, different key
    EXPECT_NE(k1, ArtifactStore::gpmTraceKey(gpm::GpmApp::TT, g1, 1));
    EXPECT_NE(k1, ArtifactStore::gpmTraceKey(gpm::GpmApp::T, g1, 2));
    EXPECT_NE(ArtifactStore::gpmChunkTraceKey(gpm::GpmApp::T, g1, 1,
                                              0, 8),
              ArtifactStore::gpmChunkTraceKey(gpm::GpmApp::T, g1, 1,
                                              1, 8));
    // Program keys derive from the trace key + bytecode version.
    EXPECT_NE(ArtifactStore::programKey(k1), k1);
}
