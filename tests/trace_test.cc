/**
 * @file
 * Tests for the execution-event trace IR: replayed cycles and
 * breakdowns are bit-identical to direct execution for every backend
 * x app x graph x tensor-kernel combination covered here, traces
 * survive a byte-stable serialization round trip, the committed
 * golden trace stays byte-stable, and the capture-once api paths
 * (Machine::compare / compareParallelGpm) match their direct
 * equivalents.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "api/machine.hh"
#include "api/parallel.hh"
#include "backend/cpu_backend.hh"
#include "backend/functional_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "baselines/flexminer.hh"
#include "baselines/gpu_model.hh"
#include "baselines/triejax.hh"
#include "gpm/executor.hh"
#include "gpm/fsm.hh"
#include "gpm/isomorphism.hh"
#include "kernels/spmspm.hh"
#include "kernels/ttm.hh"
#include "kernels/ttv.hh"
#include "tensor/tensor_gen.hh"
#include "test_util.hh"
#include "trace/recorder.hh"
#include "trace/replay.hh"

using namespace sc;

namespace {

/** Capture one GPM run's trace (and its functional result). */
trace::Trace
captureGpm(const graph::CsrGraph &g, gpm::GpmApp app,
           std::uint64_t *embeddings = nullptr)
{
    trace::TraceRecorder recorder;
    gpm::PlanExecutor executor(g, recorder);
    const auto run = executor.runMany(gpm::gpmAppPlans(app));
    if (embeddings)
        *embeddings = run.embeddings;
    return recorder.takeTrace();
}

/**
 * The core property: direct execution and trace replay must agree
 * bit-for-bit on cycles AND on the full breakdown.
 */
template <typename MakeBackend>
void
expectReplayEquivalence(const graph::CsrGraph &g, gpm::GpmApp app,
                        MakeBackend make, const char *label)
{
    auto direct_be = make();
    gpm::PlanExecutor direct(g, *direct_be);
    const auto d = direct.runMany(gpm::gpmAppPlans(app));

    const trace::Trace tr = captureGpm(g, app);
    auto replay_be = make();
    const auto r = trace::replay(tr, *replay_be);

    EXPECT_EQ(d.cycles, r.cycles)
        << label << " " << gpm::gpmAppName(app) << " on " << g.name();
    EXPECT_EQ(d.breakdown.cycles, r.breakdown.cycles)
        << label << " " << gpm::gpmAppName(app) << " on " << g.name();
}

} // namespace

// ---------------- GPM replay equivalence ----------------

class TraceReplay : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TraceReplay, GpmBitIdenticalAcrossBackends)
{
    const auto g =
        test::randomTestGraph(120, 900, GetParam());
    const arch::SparseCoreConfig config;
    arch::SparseCoreConfig no_nested = config;
    no_nested.nestedIntersection = false;

    for (const gpm::GpmApp app :
         {gpm::GpmApp::T, gpm::GpmApp::TC, gpm::GpmApp::C4}) {
        expectReplayEquivalence(
            g, app,
            [&] {
                return std::make_unique<backend::CpuBackend>(
                    config.core, config.mem);
            },
            "cpu");
        expectReplayEquivalence(
            g, app,
            [&] {
                return std::make_unique<backend::SparseCoreBackend>(
                    config);
            },
            "sparsecore");
        expectReplayEquivalence(
            g, app,
            [&] {
                return std::make_unique<backend::SparseCoreBackend>(
                    no_nested);
            },
            "sparsecore-no-nested");
        expectReplayEquivalence(
            g, app,
            [&] {
                return std::make_unique<baselines::FlexMinerBackend>();
            },
            "flexminer");

        const auto plans = gpm::gpmAppPlans(app);
        const unsigned redundancy = static_cast<unsigned>(
            gpm::automorphisms(plans.front().pattern).size());
        expectReplayEquivalence(
            g, app,
            [&] {
                return std::make_unique<baselines::GpuBackend>(
                    true, redundancy);
            },
            "gpu");
        if (app == gpm::GpmApp::T || app == gpm::GpmApp::C4)
            expectReplayEquivalence(
                g, app,
                [&] {
                    return std::make_unique<baselines::TrieJaxBackend>(
                        redundancy, g.numEdgeSlots());
                },
                "triejax");
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceReplay,
                         ::testing::Values(11, 22, 33));

TEST(TraceReplayFsm, BitIdenticalOnLabeledGraph)
{
    auto base = test::randomTestGraph(80, 500, 77);
    std::vector<graph::Label> labels(base.numVertices());
    for (VertexId v = 0; v < base.numVertices(); ++v)
        labels[v] = static_cast<graph::Label>(v % 3);
    const graph::LabeledGraph lg(std::move(base), labels);

    trace::TraceRecorder recorder;
    const auto functional = gpm::runFsm(lg, recorder, 2);
    const trace::Trace tr = recorder.takeTrace();

    for (const bool sparse : {false, true}) {
        const arch::SparseCoreConfig config;
        std::unique_ptr<backend::ExecBackend> direct_be, replay_be;
        if (sparse) {
            direct_be =
                std::make_unique<backend::SparseCoreBackend>(config);
            replay_be =
                std::make_unique<backend::SparseCoreBackend>(config);
        } else {
            direct_be = std::make_unique<backend::CpuBackend>(
                config.core, config.mem);
            replay_be = std::make_unique<backend::CpuBackend>(
                config.core, config.mem);
        }
        const auto direct = gpm::runFsm(lg, *direct_be, 2);
        const auto replayed = trace::replay(tr, *replay_be);
        EXPECT_EQ(direct.cycles, replayed.cycles);
        EXPECT_EQ(direct.totalFrequent(), functional.totalFrequent());
    }
}

// ---------------- tensor-kernel replay equivalence ----------------

TEST(TraceReplayTensor, SpmspmAllAlgorithms)
{
    const auto a = tensor::generateMatrix(
        40, 50, 300, tensor::MatrixStructure::Uniform, 21, "A");
    const auto b = tensor::generateMatrix(
        50, 35, 280, tensor::MatrixStructure::Uniform, 22, "B");
    const arch::SparseCoreConfig config;

    for (const auto algorithm : {kernels::SpmspmAlgorithm::Inner,
                                 kernels::SpmspmAlgorithm::Outer,
                                 kernels::SpmspmAlgorithm::Gustavson}) {
        trace::TraceRecorder recorder;
        kernels::runSpmspm(a, b, algorithm, recorder);
        const trace::Trace tr = recorder.takeTrace();

        backend::CpuBackend cpu_direct(config.core, config.mem);
        const auto cd = kernels::runSpmspm(a, b, algorithm, cpu_direct);
        backend::CpuBackend cpu_replay(config.core, config.mem);
        const auto cr = trace::replay(tr, cpu_replay);
        EXPECT_EQ(cd.cycles, cr.cycles);
        EXPECT_EQ(cpu_direct.breakdown().cycles, cr.breakdown.cycles);

        backend::SparseCoreBackend sc_direct(config);
        const auto sd = kernels::runSpmspm(a, b, algorithm, sc_direct);
        backend::SparseCoreBackend sc_replay(config);
        const auto sr = trace::replay(tr, sc_replay);
        EXPECT_EQ(sd.cycles, sr.cycles);
        EXPECT_EQ(sc_direct.breakdown().cycles, sr.breakdown.cycles);
    }
}

TEST(TraceReplayTensor, TtvAndTtm)
{
    const auto t = tensor::generateTensor(20, 15, 30, 400, 41, "T");
    const std::vector<Value> vec(30, 1.5);
    const auto b = tensor::generateMatrix(
        12, 30, 140, tensor::MatrixStructure::Uniform, 42, "B");
    const arch::SparseCoreConfig config;

    {
        trace::TraceRecorder recorder;
        kernels::runTtv(t, vec, recorder);
        const trace::Trace tr = recorder.takeTrace();
        backend::CpuBackend direct(config.core, config.mem);
        const auto d = kernels::runTtv(t, vec, direct);
        backend::CpuBackend rep(config.core, config.mem);
        EXPECT_EQ(d.cycles, trace::replay(tr, rep).cycles);
        backend::SparseCoreBackend sc_direct(config);
        const auto ds = kernels::runTtv(t, vec, sc_direct);
        backend::SparseCoreBackend sc_rep(config);
        EXPECT_EQ(ds.cycles, trace::replay(tr, sc_rep).cycles);
    }
    {
        trace::TraceRecorder recorder;
        kernels::runTtm(t, b, recorder);
        const trace::Trace tr = recorder.takeTrace();
        backend::CpuBackend direct(config.core, config.mem);
        const auto d = kernels::runTtm(t, b, direct);
        backend::CpuBackend rep(config.core, config.mem);
        EXPECT_EQ(d.cycles, trace::replay(tr, rep).cycles);
        backend::SparseCoreBackend sc_direct(config);
        const auto ds = kernels::runTtm(t, b, sc_direct);
        backend::SparseCoreBackend sc_rep(config);
        EXPECT_EQ(ds.cycles, trace::replay(tr, sc_rep).cycles);
    }
}

// ---------------- serialization ----------------

TEST(TraceSerialization, RoundTripIsByteStable)
{
    const auto g = test::randomTestGraph(60, 400, 55);
    const trace::Trace tr = captureGpm(g, gpm::GpmApp::T);
    ASSERT_GT(tr.numEvents(), 0u);

    const std::string bytes = tr.serialize();
    const trace::Trace back = trace::Trace::deserialize(bytes);
    EXPECT_EQ(back.numEvents(), tr.numEvents());
    EXPECT_EQ(back.arenaKeys(), tr.arenaKeys());
    EXPECT_EQ(back.handleCount(), tr.handleCount());
    EXPECT_EQ(back.serialize(), bytes);

    // The deserialized trace replays identically.
    backend::SparseCoreBackend be_a, be_b;
    EXPECT_EQ(trace::replay(tr, be_a).cycles,
              trace::replay(back, be_b).cycles);
}

TEST(TraceSerialization, RejectsCorruptInput)
{
    const auto g = test::randomTestGraph(30, 120, 56);
    const trace::Trace tr = captureGpm(g, gpm::GpmApp::TC);
    std::string bytes = tr.serialize();

    EXPECT_THROW(trace::Trace::deserialize("bogus"), SimError);
    EXPECT_THROW(trace::Trace::deserialize(
                     std::string_view(bytes.data(), bytes.size() / 2)),
                 SimError);
    std::string wrong_magic = bytes;
    wrong_magic[0] = 'X';
    EXPECT_THROW(trace::Trace::deserialize(wrong_magic), SimError);
}

TEST(TraceSerialization, GoldenTraceStaysByteStable)
{
    // The committed golden trace pins the serialized format: a layout
    // change must bump traceFormatVersion and regenerate the file
    // (SPARSECORE_REGEN_GOLDEN=1 ./sparsecore_tests).
    const std::string path =
        std::string(SPARSECORE_TEST_DATA_DIR) + "/golden_trace.bin";
    const trace::Trace tr =
        captureGpm(test::figureOneGraph(), gpm::GpmApp::T);
    const std::string bytes = tr.serialize();

    if (std::getenv("SPARSECORE_REGEN_GOLDEN")) {
        tr.saveFile(path);
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing " << path;
    std::ostringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str(), bytes)
        << "serialized trace diverged from the golden file";

    const trace::Trace golden = trace::Trace::loadFile(path);
    backend::SparseCoreBackend be_a, be_b;
    EXPECT_EQ(trace::replay(golden, be_a).cycles,
              trace::replay(tr, be_b).cycles);
}

// ---------------- statistics & text dump ----------------

TEST(TraceStats, CountersAndDump)
{
    std::uint64_t embeddings = 0;
    const auto g = test::randomTestGraph(60, 400, 57);
    const trace::Trace tr = captureGpm(g, gpm::GpmApp::T, &embeddings);
    EXPECT_GT(embeddings, 0u);

    const StatSet stats = tr.statSet();
    EXPECT_EQ(stats.get("events"), tr.numEvents());
    EXPECT_EQ(stats.get("arenaKeys"), tr.arenaKeys());
    EXPECT_GT(stats.get("events.streamLoad"), 0u);
    EXPECT_GT(tr.memoryBytes(), 0u);

    const std::string dump = tr.dumpText(64);
    EXPECT_NE(dump.find("streamLoad"), std::string::npos);
}

TEST(TraceStats, InterningDeduplicatesSpans)
{
    // Neighbor lists recur across recursion levels; the interned
    // arena must stay well below the total referenced key volume.
    const auto g = test::randomTestGraph(100, 1200, 58);
    const trace::Trace tr = captureGpm(g, gpm::GpmApp::C4);
    std::uint64_t referenced = 0;
    for (const auto &e : tr.events())
        referenced += e.s0.len + e.s1.len + e.s2.len + e.s3.len;
    ASSERT_GT(referenced, 0u);
    EXPECT_LT(tr.arenaKeys(), referenced / 2)
        << "interning should deduplicate repeated neighbor lists";
}

// ---------------- api capture-once paths ----------------

TEST(TraceApi, CompareGpmMatchesDirectRuns)
{
    const auto g = test::randomTestGraph(100, 800, 59);
    api::Machine machine;
    for (const gpm::GpmApp app : {gpm::GpmApp::T, gpm::GpmApp::TC}) {
        const auto req = api::RunRequest::gpm(app, g);
        const auto cmp = machine.compare(req);
        const auto cpu = machine.run(req, api::Substrate::Cpu);
        const auto sc = machine.run(req, api::Substrate::SparseCore);
        EXPECT_EQ(cmp.baseline.cycles, cpu.cycles);
        EXPECT_EQ(cmp.accelerated.cycles, sc.cycles);
        EXPECT_EQ(cmp.baseline.breakdown.cycles, cpu.breakdown.cycles);
        EXPECT_EQ(cmp.accelerated.breakdown.cycles,
                  sc.breakdown.cycles);
        EXPECT_EQ(cmp.functionalResult, sc.functionalResult);
        EXPECT_GT(cmp.trace.events, 0u);
        EXPECT_GT(cmp.trace.arenaBytes, 0u);
        EXPECT_NE(cmp.str().find("trace:"), std::string::npos);
    }
}

TEST(TraceApi, CompareParallelGpmMatchesMineParallel)
{
    const auto g = test::randomTestGraph(200, 1800, 60);
    const auto cmp = api::compareParallelGpm(gpm::GpmApp::T, g, 6);
    const auto cpu = api::mineParallelCpu(gpm::GpmApp::T, g, 6);
    const auto sc = api::mineParallelSparseCore(gpm::GpmApp::T, g, 6);
    EXPECT_EQ(cmp.functionalResult, sc.embeddings);
    EXPECT_EQ(cmp.baseline.cycles, cpu.cycles);
    EXPECT_EQ(cmp.accelerated.cycles, sc.cycles);
    ASSERT_EQ(cmp.baseline.perCore.size(), cpu.perCore.size());
    for (std::size_t c = 0; c < cpu.perCore.size(); ++c) {
        EXPECT_EQ(cmp.baseline.perCore[c], cpu.perCore[c]);
        EXPECT_EQ(cmp.accelerated.perCore[c], sc.perCore[c]);
    }
    EXPECT_GT(cmp.speedup(), 1.0);
}

TEST(TraceApi, CompareParallelGpmDeterministicAcrossPools)
{
    const auto g = test::randomTestGraph(150, 1200, 61);
    ThreadPool one(1), four(4);
    api::HostOptions h1, h4;
    h1.pool = &one;
    h4.pool = &four;
    const auto r1 =
        api::compareParallelGpm(gpm::GpmApp::C4, g, 6, {}, 1, h1);
    const auto r4 =
        api::compareParallelGpm(gpm::GpmApp::C4, g, 6, {}, 1, h4);
    EXPECT_EQ(r1.functionalResult, r4.functionalResult);
    EXPECT_EQ(r1.baseline.cycles, r4.baseline.cycles);
    EXPECT_EQ(r1.accelerated.cycles, r4.accelerated.cycles);
    ASSERT_EQ(r1.baseline.perCore.size(), r4.baseline.perCore.size());
    for (std::size_t c = 0; c < r1.baseline.perCore.size(); ++c) {
        EXPECT_EQ(r1.baseline.perCore[c], r4.baseline.perCore[c]);
        EXPECT_EQ(r1.accelerated.perCore[c],
                  r4.accelerated.perCore[c]);
    }
}
