/**
 * @file
 * Tests for api::JobQueue: batched async submission, per-job futures,
 * structured rejection of malformed jobs, bit-identity of queued
 * results against sequential Machine execution, queue statistics, and
 * a concurrent-submitter soak (the TSan target in check.sh).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "api/artifact_store.hh"
#include "api/job_queue.hh"
#include "api/jobspec.hh"
#include "api/machine.hh"
#include "trace/recorder.hh"

using namespace sc;
using api::JobQueue;
using api::JobReport;

namespace {

/** A small mixed batch: every workload class, valid throughout. */
std::vector<std::string>
mixedBatch()
{
    return {
        R"({"version":1,"id":"a","workload":"gpm","app":"T","dataset":"W"})",
        R"({"version":1,"id":"b","workload":"gpm","app":"T","dataset":"W","mode":"run","substrate":"sparsecore"})",
        R"({"version":1,"id":"c","workload":"fsm","dataset":"C","min_support":500})",
        R"({"version":1,"id":"d","workload":"spmspm","dataset":"E","options":{"stride":4}})",
        R"({"version":1,"id":"e","workload":"ttv","dataset":"Ch","options":{"stride":8}})",
        R"({"version":1,"id":"f","workload":"ttm","dataset":"U","options":{"stride":128}})",
    };
}

} // namespace

TEST(JobQueue, BatchOfFuturesAllComplete)
{
    JobQueue queue;
    std::vector<std::future<JobReport>> futures;
    for (const std::string &line : mixedBatch())
        futures.push_back(queue.submitJson(line));
    for (auto &f : futures) {
        const JobReport r = f.get();
        EXPECT_TRUE(r.ok) << r.id << ": "
                          << (r.errors.empty()
                                  ? std::string("?")
                                  : r.errors[0].message);
        EXPECT_TRUE(r.run.has_value() || r.comparison.has_value());
    }
    const api::JobQueueStats stats = queue.stats();
    EXPECT_EQ(stats.submitted, 6u);
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.completed, 6u);
    EXPECT_EQ(stats.failed, 0u);
}

TEST(JobQueue, MalformedJobsRejectWithoutAborting)
{
    JobQueue queue;
    const char *bad[] = {
        "{ not json",
        R"({"version":1,"workload":"quantum","dataset":"W"})",
        R"({"version":1,"workload":"gpm","dataset":"NOPE"})",
        R"({"version":1,"workload":"gpm","dataset":"W",)"
        R"("options":{"stride":0}})",
        R"({"version":9,"workload":"gpm","dataset":"W"})",
    };
    for (const char *line : bad) {
        auto f = queue.submitJson(line);
        // Rejection is synchronous: the future is already satisfied.
        ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready)
            << line;
        const JobReport r = f.get();
        EXPECT_FALSE(r.ok) << line;
        EXPECT_FALSE(r.errors.empty()) << line;
        EXPECT_FALSE(r.run.has_value());
        EXPECT_FALSE(r.comparison.has_value());
    }
    // A valid job still runs after the rejects.
    EXPECT_TRUE(queue
                    .submitJson(R"({"version":1,"workload":"gpm",)"
                                R"("app":"T","dataset":"W"})")
                    .get()
                    .ok);
    const api::JobQueueStats stats = queue.stats();
    EXPECT_EQ(stats.submitted, 6u);
    EXPECT_EQ(stats.rejected, 5u);
    EXPECT_EQ(stats.completed, 1u);
}

TEST(JobQueue, QueuedResultsMatchSequentialMachine)
{
    // Simulated results must not depend on how a job reached the
    // Machine: queue at any width == direct sequential execution.
    std::vector<JobReport> queued;
    {
        JobQueue queue;
        std::vector<std::future<JobReport>> futures;
        for (const std::string &line : mixedBatch())
            futures.push_back(queue.submitJson(line));
        for (auto &f : futures)
            queued.push_back(f.get());
    }
    for (const JobReport &r : queued) {
        ASSERT_TRUE(r.ok) << r.id;
        const auto resolved = api::resolveJob(r.spec);
        ASSERT_TRUE(resolved.ok()) << r.id;
        api::Machine machine(resolved.job->config);
        if (r.spec.mode == api::JobMode::Run) {
            const api::RunResult direct = machine.run(
                resolved.job->request, r.spec.substrate);
            ASSERT_TRUE(r.run.has_value()) << r.id;
            EXPECT_EQ(r.run->cycles, direct.cycles) << r.id;
            EXPECT_EQ(r.run->functionalResult,
                      direct.functionalResult)
                << r.id;
        } else {
            const api::Comparison direct =
                machine.compare(resolved.job->request);
            ASSERT_TRUE(r.comparison.has_value()) << r.id;
            EXPECT_EQ(r.comparison->accelerated.cycles,
                      direct.accelerated.cycles)
                << r.id;
            EXPECT_EQ(r.comparison->baseline.cycles,
                      direct.baseline.cycles)
                << r.id;
            EXPECT_EQ(r.comparison->functionalResult,
                      direct.functionalResult)
                << r.id;
        }
        // The deterministic report shape is byte-identical too.
        EXPECT_EQ(r.toJsonValue(false).dump(),
                  r.toJsonValue(false).dump());
    }
}

TEST(JobQueue, SingleWorkerRunsInSubmissionOrder)
{
    // workers=1 executes inline at submit(): every future is ready
    // the moment submit returns, in order.
    JobQueue queue(1);
    for (const std::string &line : mixedBatch()) {
        auto f = queue.submitJson(line);
        EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        EXPECT_TRUE(f.get().ok);
    }
}

TEST(JobQueue, StatsExposeArtifactSharing)
{
    // Two identical compare jobs: the second replays the first's
    // captured trace and compiled program. The spec pins the
    // bytecode engine so the program-hit assertion holds regardless
    // of SC_REPLAY (JobSpec beats environment).
    JobQueue queue(1);
    const std::string job =
        R"({"version":1,"workload":"gpm","app":"T","dataset":"W",)"
        R"("options":{"replay":"bytecode"}})";
    EXPECT_TRUE(queue.submitJson(job).get().ok);
    EXPECT_TRUE(queue.submitJson(job).get().ok);
    const api::JobQueueStats stats = queue.stats();
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_GE(stats.traceHits, 1u);
    EXPECT_GE(stats.programHits, 1u);
    EXPECT_GT(stats.jobsPerSecond, 0.0);
    EXPECT_GE(stats.p99LatencySeconds, stats.p50LatencySeconds);
    // The JSON form carries the same counters.
    const std::string dumped = stats.toJsonValue().dump();
    EXPECT_NE(dumped.find("\"jobs_per_second\""), std::string::npos);
    EXPECT_NE(dumped.find("\"artifact_store\""), std::string::npos);
}

TEST(JobQueue, ConcurrentSubmittersSoak)
{
    // Multiple tenant threads hammer one queue with interleaved valid
    // and invalid jobs. This is the TSan target: admission counters,
    // the latency vector and the store routing must all be clean.
    JobQueue queue;
    constexpr unsigned kTenants = 4;
    constexpr unsigned kJobsEach = 8;
    std::vector<std::thread> tenants;
    std::vector<std::vector<std::future<JobReport>>> futures(kTenants);
    for (unsigned t = 0; t < kTenants; ++t) {
        tenants.emplace_back([&queue, &futures, t] {
            const auto mix = mixedBatch();
            for (unsigned i = 0; i < kJobsEach; ++i) {
                if (i % 4 == 3) // every 4th job is malformed
                    futures[t].push_back(
                        queue.submitJson("{\"version\":1"));
                else
                    futures[t].push_back(queue.submitJson(
                        mix[(t + i) % mix.size()]));
            }
        });
    }
    for (auto &thread : tenants)
        thread.join();
    unsigned ok = 0, bad = 0;
    for (auto &per_tenant : futures)
        for (auto &f : per_tenant)
            f.get().ok ? ++ok : ++bad;
    EXPECT_EQ(ok, kTenants * kJobsEach * 3 / 4);
    EXPECT_EQ(bad, kTenants * kJobsEach / 4);
    const api::JobQueueStats stats = queue.stats();
    EXPECT_EQ(stats.submitted, kTenants * kJobsEach);
    EXPECT_EQ(stats.completed + stats.rejected, stats.submitted);
}

TEST(JobQueue, DrainWaitsForEverything)
{
    JobQueue queue;
    std::vector<std::future<JobReport>> futures;
    for (const std::string &line : mixedBatch())
        futures.push_back(queue.submitJson(line));
    queue.drain();
    for (auto &f : futures)
        EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
}

TEST(JobQueue, DrainRacesConcurrentSubmitters)
{
    // drain() must be callable while other threads are still
    // submitting: it waits for the jobs admitted so far and never
    // deadlocks or crashes when more arrive concurrently (another
    // TSan target).
    JobQueue queue(2);
    constexpr unsigned kSubmitters = 3;
    std::vector<std::thread> submitters;
    std::vector<std::vector<std::future<JobReport>>> futures(
        kSubmitters);
    for (unsigned t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&queue, &futures, t] {
            const auto mix = mixedBatch();
            for (unsigned i = 0; i < 6; ++i)
                futures[t].push_back(
                    queue.submitJson(mix[(t + i) % mix.size()]));
        });
    }
    for (unsigned i = 0; i < 8; ++i)
        queue.drain();
    for (auto &thread : submitters)
        thread.join();
    queue.drain();
    for (auto &per_thread : futures)
        for (auto &f : per_thread) {
            ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                      std::future_status::ready);
            EXPECT_TRUE(f.get().ok);
        }
}

TEST(JobQueue, DestructorWaitsForParkedJobs)
{
    // Four jobs on one cold lane with a two-worker pool: the first
    // dispatches as the warmer, the rest park. Destroying the queue
    // immediately must wait for the whole chain — warmer completes,
    // parked jobs release, everything finishes (TSan-clean).
    std::vector<std::future<JobReport>> futures;
    {
        JobQueue queue(2, sc::api::SchedPolicy::Affinity);
        for (int i = 0; i < 4; ++i)
            futures.push_back(queue.submitJson(
                R"({"version":1,"workload":"gpm","app":"T",)"
                R"("dataset":"W"})"));
    }
    for (auto &f : futures) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        EXPECT_TRUE(f.get().ok);
    }
}

TEST(JobQueue, CancelRemovesParkedJobsAndReportsThem)
{
    // One warmer plus three parked siblings on a cold lane; the
    // siblings are cancelled while the warmer still runs. Their
    // futures complete immediately with a structured "cancelled"
    // diagnostic; the warmer is unaffected.
    JobQueue queue(2, sc::api::SchedPolicy::Affinity);
    auto warmer = queue.submitJson(
        R"({"version":1,"id":"keeper","workload":"gpm","app":"T",)"
        R"("dataset":"W"})");
    std::vector<std::future<JobReport>> parked;
    for (int i = 0; i < 3; ++i)
        parked.push_back(queue.submitJson(
            R"({"version":1,"id":"victim","workload":"gpm",)"
            R"("app":"T","dataset":"W"})"));
    const std::size_t cancelled = queue.cancel("victim");
    EXPECT_EQ(cancelled, 3u);
    for (auto &f : parked) {
        const JobReport r = f.get();
        EXPECT_FALSE(r.ok);
        ASSERT_FALSE(r.errors.empty());
        EXPECT_NE(r.errors[0].message.find("cancelled"),
                  std::string::npos);
    }
    EXPECT_TRUE(warmer.get().ok);
    const api::JobQueueStats stats = queue.stats();
    EXPECT_EQ(stats.cancelled, 3u);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.scheduler.cancelled, 3u);
}

TEST(JobQueue, CancelOfRunningOrFinishedJobsIsANoOp)
{
    // workers=1 executes inline: by the time cancel() runs, the job
    // already finished — running/finished jobs are not cancellable.
    JobQueue queue(1);
    auto f = queue.submitJson(
        R"({"version":1,"id":"done","workload":"gpm","app":"T",)"
        R"("dataset":"W"})");
    EXPECT_EQ(queue.cancel("done"), 0u);
    EXPECT_EQ(queue.cancel("never-submitted"), 0u);
    EXPECT_TRUE(f.get().ok);
    EXPECT_EQ(queue.stats().cancelled, 0u);
}

TEST(JobQueue, PoliciesAndWidthsAgreeOnDeterministicReports)
{
    // The tentpole invariant: the --no-timing report of every job is
    // byte-identical whatever the policy or queue width.
    std::vector<std::string> reference;
    for (const auto policy :
         {sc::api::SchedPolicy::Fifo, sc::api::SchedPolicy::Affinity}) {
        for (const unsigned workers : {1u, 3u}) {
            JobQueue queue(workers, policy);
            std::vector<std::future<JobReport>> futures;
            for (const std::string &line : mixedBatch())
                futures.push_back(queue.submitJson(line));
            std::vector<std::string> dumped;
            for (auto &f : futures)
                dumped.push_back(f.get().toJsonValue(false).dump());
            if (reference.empty())
                reference = dumped;
            else
                EXPECT_EQ(dumped, reference)
                    << sc::api::schedPolicyName(policy) << " x"
                    << workers;
        }
    }
}

TEST(JobQueue, StatsExposeSchedulerCounters)
{
    JobQueue queue(1, sc::api::SchedPolicy::Affinity);
    const std::string job =
        R"({"version":1,"workload":"gpm","app":"T","dataset":"W"})";
    EXPECT_TRUE(queue.submitJson(job).get().ok);
    EXPECT_TRUE(queue.submitJson(job).get().ok);
    const api::JobQueueStats stats = queue.stats();
    EXPECT_EQ(stats.scheduler.policy, sc::api::SchedPolicy::Affinity);
    EXPECT_EQ(stats.scheduler.warmers, 1u);
    ASSERT_EQ(stats.scheduler.laneJobs.size(), 1u);
    EXPECT_EQ(stats.scheduler.laneJobs[0].second, 2u);
    EXPECT_EQ(stats.scheduler.laneJobs[0].first.rfind("gpm/", 0), 0u);
    const std::string dumped = stats.toJsonValue().dump();
    EXPECT_NE(dumped.find("\"scheduler\""), std::string::npos);
    EXPECT_NE(dumped.find("\"convoy_avoided\""), std::string::npos);
    EXPECT_NE(dumped.find("\"lanes\""), std::string::npos);
    EXPECT_NE(dumped.find("\"trace_waits\""), std::string::npos);
}

// ---------------- admission-time verification ----------------

TEST(JobQueue, AdmissionRejectsWarmJobOverDeclaredSusBudget)
{
    // Cold submissions are never pressure-checked (nothing resident
    // to analyze); once the dataset's trace is warm, a job declaring
    // an arch.sus budget below the trace's peak live-stream pressure
    // is rejected at submit() with a structured JobDiag — never a
    // throw — before it reaches the scheduler.
    // App TC keeps several streams live at once (the materializing
    // triangle-count plan), unlike the nested-intersection apps whose
    // trace-level pressure is 1.
    api::ArtifactStore::global().clear();
    JobQueue queue(1);
    const std::string warmup =
        R"({"version":1,"id":"warm","workload":"gpm","app":"TC",)"
        R"("dataset":"W","mode":"run","substrate":"sparsecore"})";
    EXPECT_TRUE(queue.submitJson(warmup).get().ok);

    auto f = queue.submitJson(
        R"({"version":1,"id":"tight","workload":"gpm","app":"TC",)"
        R"("dataset":"W","mode":"run","substrate":"sparsecore",)"
        R"("arch":{"sus":1}})");
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const JobReport r = f.get();
    EXPECT_FALSE(r.ok);
    ASSERT_FALSE(r.errors.empty());
    EXPECT_EQ(r.errors[0].field, "arch.sus");
    EXPECT_NE(r.errors[0].message.find("pressure"),
              std::string::npos);
    EXPECT_FALSE(r.run.has_value());
    EXPECT_FALSE(r.comparison.has_value());

    // A budget at or above the trace's peak pressure is admitted.
    EXPECT_TRUE(queue
                    .submitJson(R"({"version":1,"id":"roomy",)"
                                R"("workload":"gpm","app":"TC",)"
                                R"("dataset":"W","mode":"run",)"
                                R"("substrate":"sparsecore",)"
                                R"("arch":{"sus":8}})")
                    .get()
                    .ok);

    const api::JobQueueStats stats = queue.stats();
    EXPECT_EQ(stats.rejected, 1u);
    EXPECT_EQ(stats.pressureRejected, 1u);
    EXPECT_EQ(stats.verifyRejected, 0u);
    EXPECT_GE(stats.verifyChecked, 2u);
    const std::string dumped = stats.toJsonValue().dump();
    EXPECT_NE(dumped.find("\"pressure_rejected\":1"),
              std::string::npos)
        << dumped;
}

TEST(JobQueue, AdmissionRejectsWarmJobFailingVerification)
{
    // Poison the exact affinity key the job resolves to with a trace
    // carrying a lifetime error: a verify-enabled job on that warm
    // dataset must be rejected at admission with the "program" diag.
    api::ArtifactStore::global().clear();
    const std::string json =
        R"({"version":1,"id":"poisoned","workload":"gpm",)"
        R"("app":"T","dataset":"W","options":{"verify":true}})";
    const auto parsed = api::parseJobSpec(json);
    ASSERT_TRUE(parsed.ok());
    const auto resolved = api::resolveJob(*parsed.spec);
    ASSERT_TRUE(resolved.ok());
    const std::string key = resolved.job->affinityKey;
    ASSERT_FALSE(key.empty());
    api::ArtifactStore::global().trace(
        key, [](trace::TraceRecorder &rec) {
            rec.begin();
            const auto a = rec.streamLoad(
                0x1000, 3, 0, std::vector<Key>{1, 2, 3});
            rec.streamFree(a);
            rec.streamFree(a); // double free: an error diagnostic
            return std::uint64_t{0};
        });

    JobQueue queue(1);
    auto f = queue.submitJson(json);
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const JobReport r = f.get();
    EXPECT_FALSE(r.ok);
    ASSERT_FALSE(r.errors.empty());
    EXPECT_EQ(r.errors[0].field, "program");
    EXPECT_NE(r.errors[0].message.find("double-free"),
              std::string::npos)
        << r.errors[0].message;

    const api::JobQueueStats stats = queue.stats();
    EXPECT_EQ(stats.rejected, 1u);
    EXPECT_EQ(stats.verifyRejected, 1u);
    EXPECT_EQ(stats.pressureRejected, 0u);

    // Drop the poisoned trace so later tests rebuild the real one.
    api::ArtifactStore::global().clear();
}

TEST(JobQueue, AdmissionAdmitsUndeclaredJobsAndCachesVerdicts)
{
    // Jobs that declare no arch.sus budget are never pressure-
    // rejected, and a warm verify-enabled job reuses the cached
    // verdict instead of re-running the checker.
    api::ArtifactStore::global().clear();
    JobQueue queue(1);
    const std::string job =
        R"({"version":1,"workload":"gpm","app":"T","dataset":"W",)"
        R"("options":{"verify":true}})";
    EXPECT_TRUE(queue.submitJson(job).get().ok);
    EXPECT_TRUE(queue.submitJson(job).get().ok);

    const api::JobQueueStats stats = queue.stats();
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.pressureRejected, 0u);
    EXPECT_EQ(stats.verifyRejected, 0u);
    EXPECT_GE(stats.verifyChecked, 1u); // the warm second submit
    EXPECT_GE(stats.verdictHits, 1u);   // re-check skipped
    const std::string dumped = stats.toJsonValue().dump();
    EXPECT_NE(dumped.find("\"verify\""), std::string::npos);
    EXPECT_NE(dumped.find("\"verdict_hits\""), std::string::npos);
}

TEST(JobQueue, VerificationCachingKeepsResultsBitIdentical)
{
    // The acceptance invariant: results and cycles must be
    // bit-identical whether the verdict cache is cold (checker runs)
    // or warm (verified bit short-circuits the re-check).
    const std::string job =
        R"({"version":1,"workload":"gpm","app":"T","dataset":"W",)"
        R"("options":{"verify":true}})";

    api::ArtifactStore::global().clear();
    JobQueue cold_queue(1);
    const JobReport cold = cold_queue.submitJson(job).get();
    ASSERT_TRUE(cold.ok);

    JobQueue warm_queue(1); // verdict + trace + program all resident
    const JobReport warm = warm_queue.submitJson(job).get();
    ASSERT_TRUE(warm.ok);

    ASSERT_TRUE(cold.comparison.has_value());
    ASSERT_TRUE(warm.comparison.has_value());
    EXPECT_EQ(warm.comparison->accelerated.cycles,
              cold.comparison->accelerated.cycles);
    EXPECT_EQ(warm.comparison->baseline.cycles,
              cold.comparison->baseline.cycles);
    EXPECT_EQ(warm.comparison->functionalResult,
              cold.comparison->functionalResult);
    EXPECT_EQ(warm.toJsonValue(false).dump(),
              cold.toJsonValue(false).dump());
}

TEST(LatencyReservoir, BoundsMemoryAtCapacity)
{
    api::LatencyReservoir reservoir(64);
    for (int i = 0; i < 10000; ++i)
        reservoir.record(static_cast<double>(i));
    EXPECT_EQ(reservoir.samples().size(), 64u);
    EXPECT_EQ(reservoir.count(), 10000u);
    for (const double s : reservoir.samples()) {
        EXPECT_GE(s, 0.0);
        EXPECT_LT(s, 10000.0);
    }
}

TEST(LatencyReservoir, KeepsEverythingBelowCapacity)
{
    api::LatencyReservoir reservoir(128);
    for (int i = 0; i < 100; ++i)
        reservoir.record(static_cast<double>(i));
    EXPECT_EQ(reservoir.samples().size(), 100u);
    EXPECT_EQ(reservoir.count(), 100u);
}

TEST(LatencyReservoir, MedianStaysNearTheStreamMedian)
{
    // A uniform 0..1 ramp of 50k observations through a 512-slot
    // reservoir: the retained sample's median must stay close to the
    // stream's 0.5 (deterministic generator, so this is a fixed
    // result, not a flaky statistical bound).
    api::LatencyReservoir reservoir(512);
    for (int i = 0; i < 50000; ++i)
        reservoir.record(i / 50000.0);
    std::vector<double> samples = reservoir.samples();
    ASSERT_EQ(samples.size(), 512u);
    std::sort(samples.begin(), samples.end());
    const double median = samples[samples.size() / 2];
    EXPECT_NEAR(median, 0.5, 0.1);
}
