/**
 * @file
 * Tests for api::JobQueue: batched async submission, per-job futures,
 * structured rejection of malformed jobs, bit-identity of queued
 * results against sequential Machine execution, queue statistics, and
 * a concurrent-submitter soak (the TSan target in check.sh).
 */

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <thread>
#include <vector>

#include "api/job_queue.hh"
#include "api/jobspec.hh"
#include "api/machine.hh"

using namespace sc;
using api::JobQueue;
using api::JobReport;

namespace {

/** A small mixed batch: every workload class, valid throughout. */
std::vector<std::string>
mixedBatch()
{
    return {
        R"({"version":1,"id":"a","workload":"gpm","app":"T","dataset":"W"})",
        R"({"version":1,"id":"b","workload":"gpm","app":"T","dataset":"W","mode":"run","substrate":"sparsecore"})",
        R"({"version":1,"id":"c","workload":"fsm","dataset":"C","min_support":500})",
        R"({"version":1,"id":"d","workload":"spmspm","dataset":"E","options":{"stride":4}})",
        R"({"version":1,"id":"e","workload":"ttv","dataset":"Ch","options":{"stride":8}})",
        R"({"version":1,"id":"f","workload":"ttm","dataset":"U","options":{"stride":128}})",
    };
}

} // namespace

TEST(JobQueue, BatchOfFuturesAllComplete)
{
    JobQueue queue;
    std::vector<std::future<JobReport>> futures;
    for (const std::string &line : mixedBatch())
        futures.push_back(queue.submitJson(line));
    for (auto &f : futures) {
        const JobReport r = f.get();
        EXPECT_TRUE(r.ok) << r.id << ": "
                          << (r.errors.empty()
                                  ? std::string("?")
                                  : r.errors[0].message);
        EXPECT_TRUE(r.run.has_value() || r.comparison.has_value());
    }
    const api::JobQueueStats stats = queue.stats();
    EXPECT_EQ(stats.submitted, 6u);
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.completed, 6u);
    EXPECT_EQ(stats.failed, 0u);
}

TEST(JobQueue, MalformedJobsRejectWithoutAborting)
{
    JobQueue queue;
    const char *bad[] = {
        "{ not json",
        R"({"version":1,"workload":"quantum","dataset":"W"})",
        R"({"version":1,"workload":"gpm","dataset":"NOPE"})",
        R"({"version":1,"workload":"gpm","dataset":"W",)"
        R"("options":{"stride":0}})",
        R"({"version":9,"workload":"gpm","dataset":"W"})",
    };
    for (const char *line : bad) {
        auto f = queue.submitJson(line);
        // Rejection is synchronous: the future is already satisfied.
        ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready)
            << line;
        const JobReport r = f.get();
        EXPECT_FALSE(r.ok) << line;
        EXPECT_FALSE(r.errors.empty()) << line;
        EXPECT_FALSE(r.run.has_value());
        EXPECT_FALSE(r.comparison.has_value());
    }
    // A valid job still runs after the rejects.
    EXPECT_TRUE(queue
                    .submitJson(R"({"version":1,"workload":"gpm",)"
                                R"("app":"T","dataset":"W"})")
                    .get()
                    .ok);
    const api::JobQueueStats stats = queue.stats();
    EXPECT_EQ(stats.submitted, 6u);
    EXPECT_EQ(stats.rejected, 5u);
    EXPECT_EQ(stats.completed, 1u);
}

TEST(JobQueue, QueuedResultsMatchSequentialMachine)
{
    // Simulated results must not depend on how a job reached the
    // Machine: queue at any width == direct sequential execution.
    std::vector<JobReport> queued;
    {
        JobQueue queue;
        std::vector<std::future<JobReport>> futures;
        for (const std::string &line : mixedBatch())
            futures.push_back(queue.submitJson(line));
        for (auto &f : futures)
            queued.push_back(f.get());
    }
    for (const JobReport &r : queued) {
        ASSERT_TRUE(r.ok) << r.id;
        const auto resolved = api::resolveJob(r.spec);
        ASSERT_TRUE(resolved.ok()) << r.id;
        api::Machine machine(resolved.job->config);
        if (r.spec.mode == api::JobMode::Run) {
            const api::RunResult direct = machine.run(
                resolved.job->request, r.spec.substrate);
            ASSERT_TRUE(r.run.has_value()) << r.id;
            EXPECT_EQ(r.run->cycles, direct.cycles) << r.id;
            EXPECT_EQ(r.run->functionalResult,
                      direct.functionalResult)
                << r.id;
        } else {
            const api::Comparison direct =
                machine.compare(resolved.job->request);
            ASSERT_TRUE(r.comparison.has_value()) << r.id;
            EXPECT_EQ(r.comparison->accelerated.cycles,
                      direct.accelerated.cycles)
                << r.id;
            EXPECT_EQ(r.comparison->baseline.cycles,
                      direct.baseline.cycles)
                << r.id;
            EXPECT_EQ(r.comparison->functionalResult,
                      direct.functionalResult)
                << r.id;
        }
        // The deterministic report shape is byte-identical too.
        EXPECT_EQ(r.toJsonValue(false).dump(),
                  r.toJsonValue(false).dump());
    }
}

TEST(JobQueue, SingleWorkerRunsInSubmissionOrder)
{
    // workers=1 executes inline at submit(): every future is ready
    // the moment submit returns, in order.
    JobQueue queue(1);
    for (const std::string &line : mixedBatch()) {
        auto f = queue.submitJson(line);
        EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        EXPECT_TRUE(f.get().ok);
    }
}

TEST(JobQueue, StatsExposeArtifactSharing)
{
    // Two identical compare jobs: the second replays the first's
    // captured trace and compiled program. The spec pins the
    // bytecode engine so the program-hit assertion holds regardless
    // of SC_REPLAY (JobSpec beats environment).
    JobQueue queue(1);
    const std::string job =
        R"({"version":1,"workload":"gpm","app":"T","dataset":"W",)"
        R"("options":{"replay":"bytecode"}})";
    EXPECT_TRUE(queue.submitJson(job).get().ok);
    EXPECT_TRUE(queue.submitJson(job).get().ok);
    const api::JobQueueStats stats = queue.stats();
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_GE(stats.traceHits, 1u);
    EXPECT_GE(stats.programHits, 1u);
    EXPECT_GT(stats.jobsPerSecond, 0.0);
    EXPECT_GE(stats.p99LatencySeconds, stats.p50LatencySeconds);
    // The JSON form carries the same counters.
    const std::string dumped = stats.toJsonValue().dump();
    EXPECT_NE(dumped.find("\"jobs_per_second\""), std::string::npos);
    EXPECT_NE(dumped.find("\"artifact_store\""), std::string::npos);
}

TEST(JobQueue, ConcurrentSubmittersSoak)
{
    // Multiple tenant threads hammer one queue with interleaved valid
    // and invalid jobs. This is the TSan target: admission counters,
    // the latency vector and the store routing must all be clean.
    JobQueue queue;
    constexpr unsigned kTenants = 4;
    constexpr unsigned kJobsEach = 8;
    std::vector<std::thread> tenants;
    std::vector<std::vector<std::future<JobReport>>> futures(kTenants);
    for (unsigned t = 0; t < kTenants; ++t) {
        tenants.emplace_back([&queue, &futures, t] {
            const auto mix = mixedBatch();
            for (unsigned i = 0; i < kJobsEach; ++i) {
                if (i % 4 == 3) // every 4th job is malformed
                    futures[t].push_back(
                        queue.submitJson("{\"version\":1"));
                else
                    futures[t].push_back(queue.submitJson(
                        mix[(t + i) % mix.size()]));
            }
        });
    }
    for (auto &thread : tenants)
        thread.join();
    unsigned ok = 0, bad = 0;
    for (auto &per_tenant : futures)
        for (auto &f : per_tenant)
            f.get().ok ? ++ok : ++bad;
    EXPECT_EQ(ok, kTenants * kJobsEach * 3 / 4);
    EXPECT_EQ(bad, kTenants * kJobsEach / 4);
    const api::JobQueueStats stats = queue.stats();
    EXPECT_EQ(stats.submitted, kTenants * kJobsEach);
    EXPECT_EQ(stats.completed + stats.rejected, stats.submitted);
}

TEST(JobQueue, DrainWaitsForEverything)
{
    JobQueue queue;
    std::vector<std::future<JobReport>> futures;
    for (const std::string &line : mixedBatch())
        futures.push_back(queue.submitJson(line));
    queue.drain();
    for (auto &f : futures)
        EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
}
