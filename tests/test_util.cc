#include "test_util.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "graph/generators.hh"
#include "graph/graph_builder.hh"
#include "gpm/isomorphism.hh"

namespace sc::test {

std::uint64_t
bruteForceCount(const graph::CsrGraph &g, const gpm::Pattern &p,
                bool vertex_induced)
{
    const unsigned k = p.numVertices();
    const VertexId n = g.numVertices();
    if (n > 64)
        fatal("brute force counting limited to 64 vertices");

    // Count injective homomorphisms, then divide by |Aut(p)|: this
    // equals the symmetry-broken embedding count for both semantics.
    const std::uint64_t aut =
        gpm::automorphisms(p).size();

    std::uint64_t homomorphisms = 0;

    // Iterate k-combinations of [0, n).
    std::vector<VertexId> comb(k);
    std::iota(comb.begin(), comb.end(), 0u);
    if (n < k)
        return 0;
    while (true) {
        // All permutations of this subset.
        std::vector<unsigned> perm(k);
        std::iota(perm.begin(), perm.end(), 0u);
        do {
            bool match = true;
            for (unsigned u = 0; u < k && match; ++u) {
                for (unsigned v = u + 1; v < k && match; ++v) {
                    const bool pe = p.hasEdge(u, v);
                    const bool ge =
                        g.hasEdge(comb[perm[u]], comb[perm[v]]);
                    if (vertex_induced ? pe != ge : (pe && !ge))
                        match = false;
                }
            }
            if (match)
                ++homomorphisms;
        } while (std::next_permutation(perm.begin(), perm.end()));

        // next combination
        int i = static_cast<int>(k) - 1;
        while (i >= 0 && comb[i] == n - k + i)
            --i;
        if (i < 0)
            break;
        ++comb[i];
        for (unsigned j = i + 1; j < k; ++j)
            comb[j] = comb[j - 1] + 1;
    }
    return homomorphisms / aut;
}

graph::CsrGraph
randomTestGraph(VertexId n, std::uint64_t edges, std::uint64_t seed)
{
    return graph::generateErdosRenyi(n, edges, seed, "test-graph");
}

graph::CsrGraph
figureOneGraph()
{
    // An approximation of the paper's Fig. 1(b): seven vertices
    // (paper's 1..7 are 0..6 here) with exactly one triangle
    // {v1, v2, v6} (paper's {2, 3, 7}).
    return graph::buildCsr(7,
                           {{0, 1},
                            {1, 2},
                            {1, 6},
                            {2, 6},
                            {2, 3},
                            {3, 4},
                            {4, 5},
                            {5, 6}},
                           "fig1b");
}

} // namespace sc::test
