/**
 * @file
 * Tests for api::JobScheduler — the pure scheduling state machine
 * under JobQueue. Because the scheduler takes its clock as an
 * argument and is driven single-threaded here, every parking /
 * wakeup / priority / aging interleaving is deterministic: these
 * tests pin the protocol that the concurrent JobQueue tests can only
 * observe statistically.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "api/scheduler.hh"

using namespace sc;
using api::JobScheduler;
using api::SchedPolicy;

namespace {

JobScheduler::TimePoint
at(double seconds)
{
    return JobScheduler::TimePoint() +
           std::chrono::duration_cast<
               std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(seconds));
}

} // namespace

TEST(Scheduler, PolicyNamesRoundTrip)
{
    EXPECT_STREQ(api::schedPolicyName(SchedPolicy::Fifo), "fifo");
    EXPECT_STREQ(api::schedPolicyName(SchedPolicy::Affinity),
                 "affinity");
    EXPECT_EQ(api::parseSchedPolicy("fifo"), SchedPolicy::Fifo);
    EXPECT_EQ(api::parseSchedPolicy("affinity"),
              SchedPolicy::Affinity);
    EXPECT_FALSE(api::parseSchedPolicy("lifo").has_value());
    EXPECT_FALSE(api::parseSchedPolicy("").has_value());
}

TEST(Scheduler, FifoDispatchesEverythingImmediately)
{
    // The PR-8 baseline: no cap, no lanes, no holds — even with one
    // slot and one shared affinity key.
    JobScheduler sched(SchedPolicy::Fifo, 1);
    for (std::uint64_t seq = 0; seq < 8; ++seq)
        EXPECT_TRUE(sched.admit(seq, "gpm/T/gX/s1/tr1", 0, at(0)));
    EXPECT_EQ(sched.stats().inflight, 8u);
    EXPECT_EQ(sched.stats().parked, 0u);
    EXPECT_TRUE(sched.onComplete(3, at(1)).empty());
    EXPECT_EQ(sched.stats().inflight, 7u);
    // Per-dataset batch sizes are tracked under fifo too.
    ASSERT_EQ(sched.stats().laneJobs.size(), 1u);
    EXPECT_EQ(sched.stats().laneJobs[0].second, 8u);
}

TEST(Scheduler, ColdLaneGetsOneWarmerAndParksSiblings)
{
    JobScheduler sched(SchedPolicy::Affinity, 4);
    // First job of the cold lane dispatches as the warmer.
    EXPECT_TRUE(sched.admit(0, "laneA", 0, at(0)));
    // Siblings park even though slots are free — piling onto the
    // cold capture is exactly the convoy being avoided.
    EXPECT_FALSE(sched.admit(1, "laneA", 0, at(0)));
    EXPECT_FALSE(sched.admit(2, "laneA", 0, at(0)));
    api::SchedulerStats stats = sched.stats();
    EXPECT_EQ(stats.inflight, 1u);
    EXPECT_EQ(stats.parked, 2u);
    EXPECT_EQ(stats.warmers, 1u);
    EXPECT_EQ(stats.convoyAvoided, 2u);

    // The warmer completing marks the lane warm and releases both
    // parked siblings (slots permit).
    const auto released = sched.onComplete(0, at(1));
    EXPECT_EQ(released, (std::vector<std::uint64_t>{1, 2}));
    // Later arrivals on the warm lane dispatch straight away.
    EXPECT_TRUE(sched.admit(3, "laneA", 0, at(1)));
    EXPECT_EQ(sched.stats().parked, 0u);
}

TEST(Scheduler, DistinctLanesSpreadAcrossSlots)
{
    JobScheduler sched(SchedPolicy::Affinity, 4);
    // Four different datasets: all four dispatch concurrently, each
    // as its own lane's warmer — cold captures overlap.
    EXPECT_TRUE(sched.admit(0, "laneA", 0, at(0)));
    EXPECT_TRUE(sched.admit(1, "laneB", 0, at(0)));
    EXPECT_TRUE(sched.admit(2, "laneC", 0, at(0)));
    EXPECT_TRUE(sched.admit(3, "laneD", 0, at(0)));
    EXPECT_EQ(sched.stats().inflight, 4u);
    EXPECT_EQ(sched.stats().warmers, 4u);
    // A fifth lane waits for a slot, not for a lane.
    EXPECT_FALSE(sched.admit(4, "laneE", 0, at(0)));
    EXPECT_EQ(sched.stats().waitingForSlot, 1u);
    EXPECT_EQ(sched.onComplete(1, at(1)),
              (std::vector<std::uint64_t>{4}));
}

TEST(Scheduler, EmptyAffinityNeverParksOnlySlotCaps)
{
    // Tensor workloads share no store artifacts: no lane, no warmer,
    // but the slot cap still applies.
    JobScheduler sched(SchedPolicy::Affinity, 2);
    EXPECT_TRUE(sched.admit(0, "", 0, at(0)));
    EXPECT_TRUE(sched.admit(1, "", 0, at(0)));
    EXPECT_FALSE(sched.admit(2, "", 0, at(0)));
    EXPECT_EQ(sched.stats().warmers, 0u);
    EXPECT_EQ(sched.stats().parked, 0u);
    EXPECT_EQ(sched.stats().waitingForSlot, 1u);
    EXPECT_EQ(sched.onComplete(0, at(1)),
              (std::vector<std::uint64_t>{2}));
}

TEST(Scheduler, PriorityOrdersTheSlotQueue)
{
    JobScheduler sched(SchedPolicy::Affinity, 1, /*aging=*/0);
    EXPECT_TRUE(sched.admit(0, "", 0, at(0)));
    EXPECT_FALSE(sched.admit(1, "", 0, at(0)));  // priority 0
    EXPECT_FALSE(sched.admit(2, "", 50, at(0))); // priority 50
    EXPECT_FALSE(sched.admit(3, "", 50, at(0))); // tie: lower seq
    // Highest priority first; ties by submission order.
    EXPECT_EQ(sched.onComplete(0, at(1)),
              (std::vector<std::uint64_t>{2}));
    EXPECT_EQ(sched.onComplete(2, at(2)),
              (std::vector<std::uint64_t>{3}));
    EXPECT_EQ(sched.onComplete(3, at(3)),
              (std::vector<std::uint64_t>{1}));
    EXPECT_TRUE(sched.onComplete(1, at(4)).empty());
}

TEST(Scheduler, AgingPreventsStarvation)
{
    // One lane of aging per 0.1 s held: a priority-0 job held for
    // 2 s outranks a fresh priority-10 job.
    JobScheduler sched(SchedPolicy::Affinity, 1, /*aging=*/0.1);
    EXPECT_TRUE(sched.admit(0, "", 0, at(0)));
    EXPECT_FALSE(sched.admit(1, "", 0, at(0)));
    EXPECT_FALSE(sched.admit(2, "", 10, at(2)));
    EXPECT_EQ(sched.onComplete(0, at(2)),
              (std::vector<std::uint64_t>{1}));
}

TEST(Scheduler, ReadyJobReparksWhenItsLaneTurnsWarming)
{
    JobScheduler sched(SchedPolicy::Affinity, 2, /*aging=*/0);
    EXPECT_TRUE(sched.admit(0, "laneA", 0, at(0)));  // warmer, slot 1
    EXPECT_TRUE(sched.admit(1, "laneB", 0, at(0)));  // warmer, slot 2
    EXPECT_FALSE(sched.admit(2, "laneC", 5, at(0))); // waits for slot
    EXPECT_FALSE(sched.admit(3, "laneC", 0, at(0))); // waits for slot
    // laneA's warmer completes: job 2 takes the slot as laneC's
    // warmer. Job 3 keeps waiting.
    EXPECT_EQ(sched.onComplete(0, at(1)),
              (std::vector<std::uint64_t>{2}));
    EXPECT_EQ(sched.stats().waitingForSlot, 1u);
    // laneB's warmer completes: job 3 is popped for the free slot,
    // but its lane just turned Warming — it parks instead of
    // duplicating the cold capture, and the slot goes unused.
    EXPECT_TRUE(sched.onComplete(1, at(2)).empty());
    api::SchedulerStats stats = sched.stats();
    EXPECT_EQ(stats.parked, 1u);
    EXPECT_EQ(stats.waitingForSlot, 0u);
    // laneC's warmer completing releases it.
    EXPECT_EQ(sched.onComplete(2, at(3)),
              (std::vector<std::uint64_t>{3}));
}

TEST(Scheduler, CancelRemovesHeldJobsOnly)
{
    JobScheduler sched(SchedPolicy::Affinity, 1);
    EXPECT_TRUE(sched.admit(0, "laneA", 0, at(0)));  // dispatched
    EXPECT_FALSE(sched.admit(1, "laneA", 0, at(0))); // parked
    EXPECT_FALSE(sched.admit(2, "laneB", 0, at(0))); // waiting
    // Dispatched (running) jobs cannot be cancelled.
    EXPECT_FALSE(sched.cancel(0));
    // Parked and waiting-for-slot jobs can.
    EXPECT_TRUE(sched.cancel(1));
    EXPECT_TRUE(sched.cancel(2));
    EXPECT_FALSE(sched.cancel(1)); // already gone
    EXPECT_FALSE(sched.cancel(99)); // never admitted
    EXPECT_EQ(sched.stats().cancelled, 2u);
    // The warmer's completion finds nothing left to release.
    EXPECT_TRUE(sched.onComplete(0, at(1)).empty());
    EXPECT_EQ(sched.stats().parked, 0u);
    EXPECT_EQ(sched.stats().waitingForSlot, 0u);
}

TEST(Scheduler, LaneJobsReportPerDatasetBatchSizes)
{
    JobScheduler sched(SchedPolicy::Affinity, 8);
    sched.admit(0, "laneB", 0, at(0));
    sched.admit(1, "laneA", 0, at(0));
    sched.admit(2, "laneA", 0, at(0));
    sched.admit(3, "", 0, at(0)); // no lane: not listed
    const api::SchedulerStats stats = sched.stats();
    ASSERT_EQ(stats.laneJobs.size(), 2u);
    EXPECT_EQ(stats.laneJobs[0].first, "laneA"); // sorted by key
    EXPECT_EQ(stats.laneJobs[0].second, 2u);
    EXPECT_EQ(stats.laneJobs[1].first, "laneB");
    EXPECT_EQ(stats.laneJobs[1].second, 1u);
}

TEST(Scheduler, EveryAdmittedSeqIsEventuallyDispatched)
{
    // Liveness sweep: admit a burst across lanes and priorities, then
    // complete jobs as they dispatch — every admitted seq must come
    // out exactly once (no lost wakeups, no double dispatch).
    JobScheduler sched(SchedPolicy::Affinity, 3);
    std::vector<std::uint64_t> running;
    std::vector<bool> seen(64, false);
    const auto track = [&](std::uint64_t seq) {
        ASSERT_LT(seq, seen.size());
        ASSERT_FALSE(seen[seq]) << "seq " << seq << " twice";
        seen[seq] = true;
        running.push_back(seq);
    };
    const char *lanes[] = {"a", "b", "c", "", "a", "b"};
    double clock = 0;
    for (std::uint64_t seq = 0; seq < 64; ++seq) {
        if (sched.admit(seq, lanes[seq % 6],
                        static_cast<int>(seq % 7), at(clock)))
            track(seq);
        clock += 0.01;
        if (running.size() >= 3) {
            const std::uint64_t done = running.front();
            running.erase(running.begin());
            for (const std::uint64_t next :
                 sched.onComplete(done, at(clock)))
                track(next);
        }
    }
    while (!running.empty()) {
        const std::uint64_t done = running.front();
        running.erase(running.begin());
        clock += 0.01;
        for (const std::uint64_t next :
             sched.onComplete(done, at(clock)))
            track(next);
    }
    for (std::size_t seq = 0; seq < seen.size(); ++seq)
        EXPECT_TRUE(seen[seq]) << "seq " << seq << " never dispatched";
    const api::SchedulerStats stats = sched.stats();
    EXPECT_EQ(stats.inflight, 0u);
    EXPECT_EQ(stats.parked, 0u);
    EXPECT_EQ(stats.waitingForSlot, 0u);
}
