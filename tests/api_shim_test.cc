/**
 * @file
 * The deprecated positional-argument Machine overloads must keep
 * returning exactly what the RunRequest API returns until they are
 * removed — this is the test that keeps the shims honest. Also covers
 * the ExecBackend::Caps surface that replaced the supportsNested()
 * probe.
 */

#include <gtest/gtest.h>

#include "api/machine.hh"
#include "backend/cpu_backend.hh"
#include "backend/functional_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "tensor/tensor_gen.hh"
#include "test_util.hh"
#include "trace/recorder.hh"

using namespace sc;
using namespace sc::api;

// The whole point of this file is to call deprecated functions.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(ApiShims, GpmShimsMatchRunRequest)
{
    Machine machine;
    const auto g = test::randomTestGraph(120, 1400, 77);

    RunOptions options;
    options.rootStride = 2;
    const auto req = RunRequest::gpm(gpm::GpmApp::T, g, options);

    const auto sc_new = machine.run(req, Substrate::SparseCore);
    const auto sc_old = machine.mineSparseCore(gpm::GpmApp::T, g, 2);
    EXPECT_EQ(sc_old.embeddings, sc_new.functionalResult);
    EXPECT_EQ(sc_old.cycles, sc_new.cycles);
    EXPECT_EQ(sc_old.breakdown.cycles, sc_new.breakdown.cycles);

    const auto cpu_new = machine.run(req, Substrate::Cpu);
    const auto cpu_old = machine.mineCpu(gpm::GpmApp::T, g, 2);
    EXPECT_EQ(cpu_old.embeddings, cpu_new.functionalResult);
    EXPECT_EQ(cpu_old.cycles, cpu_new.cycles);

    const auto cmp_new = machine.compare(req);
    const auto cmp_old = machine.compareGpm(gpm::GpmApp::T, g, 2);
    EXPECT_EQ(cmp_old.functionalResult, cmp_new.functionalResult);
    EXPECT_EQ(cmp_old.baseline.cycles, cmp_new.baseline.cycles);
    EXPECT_EQ(cmp_old.accelerated.cycles, cmp_new.accelerated.cycles);
}

TEST(ApiShims, FsmShimMatchesRunRequest)
{
    Machine machine;
    const auto lg = graph::LabeledGraph::withRandomLabels(
        test::randomTestGraph(120, 1400, 78), 4, 79);
    const auto cmp_new = machine.compare(RunRequest::fsm(lg, 20));
    const auto cmp_old = machine.compareFsm(lg, 20);
    EXPECT_EQ(cmp_old.functionalResult, cmp_new.functionalResult);
    EXPECT_EQ(cmp_old.baseline.cycles, cmp_new.baseline.cycles);
    EXPECT_EQ(cmp_old.accelerated.cycles, cmp_new.accelerated.cycles);
}

TEST(ApiShims, TensorShimsMatchRunRequest)
{
    Machine machine;
    const auto a = tensor::generateMatrix(
        120, 120, 2400, tensor::MatrixStructure::Uniform, 80, "A");
    const auto algorithm = kernels::SpmspmAlgorithm::Gustavson;

    tensor::SparseMatrix prod_old, prod_new;
    const auto sc_old =
        machine.spmspmSparseCore(a, a, algorithm, 1, &prod_old);
    const auto sc_new =
        machine.run(RunRequest::spmspm(a, a, algorithm, {}, &prod_new),
                    Substrate::SparseCore);
    EXPECT_EQ(sc_old.valueOps, sc_new.functionalResult);
    EXPECT_EQ(sc_old.cycles, sc_new.cycles);
    EXPECT_EQ(prod_old.nnz(), prod_new.nnz());
    EXPECT_DOUBLE_EQ(prod_old.maxAbsDiff(prod_new), 0.0);

    const auto cpu_old = machine.spmspmCpu(a, a, algorithm);
    const auto cpu_new = machine.run(
        RunRequest::spmspm(a, a, algorithm), Substrate::Cpu);
    EXPECT_EQ(cpu_old.cycles, cpu_new.cycles);

    const auto cmp_old = machine.compareSpmspm(a, a, algorithm);
    const auto cmp_new =
        machine.compare(RunRequest::spmspm(a, a, algorithm));
    EXPECT_EQ(cmp_old.baseline.cycles, cmp_new.baseline.cycles);
    EXPECT_EQ(cmp_old.accelerated.cycles, cmp_new.accelerated.cycles);

    const auto t = tensor::generateTensor(20, 15, 60, 900, 81, "T");
    const auto v = tensor::generateVector(60, 82);
    const auto ttv_old = machine.compareTtv(t, v, 2);
    RunOptions stride2;
    stride2.stride = 2;
    const auto ttv_new =
        machine.compare(RunRequest::ttv(t, v, stride2));
    EXPECT_EQ(ttv_old.functionalResult, ttv_new.functionalResult);
    EXPECT_EQ(ttv_old.accelerated.cycles, ttv_new.accelerated.cycles);

    const auto b = tensor::generateMatrix(
        8, 60, 240, tensor::MatrixStructure::Uniform, 83, "B");
    const auto ttm_old = machine.compareTtm(t, b);
    const auto ttm_new = machine.compare(RunRequest::ttm(t, b));
    EXPECT_EQ(ttm_old.functionalResult, ttm_new.functionalResult);
    EXPECT_EQ(ttm_old.accelerated.cycles, ttm_new.accelerated.cycles);
}

TEST(BackendCaps, ReplaceSupportsNestedProbe)
{
    backend::FunctionalBackend functional;
    EXPECT_TRUE(functional.caps().nested);
    EXPECT_TRUE(functional.caps().keyValue);
    EXPECT_TRUE(functional.caps().valueMerge);

    backend::CpuBackend cpu({}, {});
    EXPECT_FALSE(cpu.caps().nested);
    EXPECT_FALSE(cpu.caps().vectorizedSetOps)
        << "CPU baseline timing is defined by its scalar merge loops";

    arch::SparseCoreConfig config;
    config.nestedIntersection = true;
    backend::SparseCoreBackend sc_on(config);
    EXPECT_TRUE(sc_on.caps().nested);
    EXPECT_TRUE(sc_on.caps().vectorizedSetOps);
    config.nestedIntersection = false;
    backend::SparseCoreBackend sc_off(config);
    EXPECT_FALSE(sc_off.caps().nested);

    trace::TraceRecorder recorder;
    EXPECT_TRUE(recorder.caps().nested);

    // The deprecated probe must agree with caps().nested.
    EXPECT_EQ(functional.supportsNested(), functional.caps().nested);
    EXPECT_EQ(cpu.supportsNested(), cpu.caps().nested);
    EXPECT_EQ(sc_on.supportsNested(), sc_on.caps().nested);
    EXPECT_EQ(sc_off.supportsNested(), sc_off.caps().nested);
}
