/**
 * @file
 * End-to-end assembled stream-ISA kernels on the functional
 * interpreter: multi-iteration loops driving S_READ/S_SUB.C/S_MERGE/
 * S_FETCH, the paper's wedge-counting and merge code shapes, and
 * scalar/stream interaction (counts feeding loop bounds).
 */

#include <gtest/gtest.h>

#include <numeric>

#include "graph/graph_builder.hh"
#include "isa/assembler.hh"
#include "isa/interpreter.hh"
#include "test_util.hh"

using namespace sc;
using namespace sc::isa;

namespace {

/** Map a graph's CSR arrays plus the offset array into memory. */
class GraphProgram : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        g = test::randomTestGraph(60, 300, 17);
        above.resize(g.numVertices());
        for (VertexId v = 0; v < g.numVertices(); ++v)
            above[v] = g.aboveOffset(v);
        mem.addSegment(g.vertexArrayBase(), g.offsets().data(),
                       g.offsets().size() * sizeof(std::uint64_t));
        mem.addSegment(g.edgeArrayBase(), g.edges().data(),
                       g.edges().size() * sizeof(VertexId));
        mem.addSegment(aboveBase, above.data(),
                       above.size() * sizeof(std::uint32_t));
    }

    static constexpr Addr aboveBase = 0x7000000000ull;
    graph::CsrGraph g;
    std::vector<std::uint32_t> above;
    MemoryImage mem;
};

} // namespace

TEST_F(GraphProgram, WedgeCountKernel)
{
    // Three-chain counting per the plan: for each directed edge
    // (v0, v1), count |N(v0) \ N(v1)| below v1. The outer loops run
    // in host code; the kernel is pure stream ISA.
    const Program kernel = assemble(R"(
        ; r1,r2 = N(v0) addr/len   r5,r6 = N(v1) addr/len
        ; r10 = bound (v1)         result -> r20
        LI r3, 1
        LI r4, 0
        S_READ r1, r2, r3, r4
        LI r7, 2
        S_READ r5, r6, r7, r4
        S_SUB.C r3, r7, r20, r10
        S_FREE r3
        S_FREE r7
        HALT
    )");

    Interpreter interp(mem);
    std::uint64_t wedges = 0;
    for (VertexId v0 = 0; v0 < g.numVertices(); ++v0) {
        for (VertexId v1 : g.neighbors(v0)) {
            interp.setGpr(1, g.edgeListAddr(v0));
            interp.setGpr(2, g.degree(v0));
            interp.setGpr(5, g.edgeListAddr(v1));
            interp.setGpr(6, g.degree(v1));
            interp.setGpr(10, v1);
            interp.run(kernel);
            wedges += interp.gpr(20);
        }
    }
    EXPECT_EQ(wedges, test::bruteForceCount(
                          g, gpm::Pattern::threeChain(), true));
}

TEST_F(GraphProgram, FetchLoopWalksProducedStream)
{
    // Produce an intersection stream and iterate it with S_FETCH
    // until EOS, summing the elements — the Fig. 3(b) inner-loop
    // shape with the loop in assembly.
    VertexId v0 = 0, v1 = 0;
    for (VertexId u = 0; u < g.numVertices() && v1 == 0; ++u)
        for (VertexId w : g.neighbors(u))
            if (streams::intersect(g.neighbors(u), g.neighbors(w))
                    .count > 0) {
                v0 = u;
                v1 = w;
                break;
            }
    ASSERT_NE(v1, 0u);

    Interpreter interp(mem);
    interp.setGpr(1, g.edgeListAddr(v0));
    interp.setGpr(2, g.degree(v0));
    interp.setGpr(5, g.edgeListAddr(v1));
    interp.setGpr(6, g.degree(v1));
    interp.run(assemble(R"(
        LI r3, 1
        LI r4, 0
        S_READ r1, r2, r3, r4
        LI r7, 2
        S_READ r5, r6, r7, r4
        LI r9, 3        ; output stream id
        LI r10, -1
        S_INTER r3, r7, r9, r10
        S_FREE r3
        S_FREE r7
        LI r11, 0       ; offset
        LI r12, 0       ; sum
        LI r13, -1      ; EOS is all-ones in 32 bits
        LI r14, 0xffffffff
    loop:
        S_FETCH r9, r11, r15
        BEQ r15, r14, done
        ADD r12, r12, r15
        ADDI r11, r11, 1
        JMP loop
    done:
        S_FREE r9
        HALT
    )"));
    std::vector<Key> expect;
    streams::intersect(g.neighbors(v0), g.neighbors(v1), noBound,
                       &expect);
    const std::uint64_t sum =
        std::accumulate(expect.begin(), expect.end(),
                        std::uint64_t{0});
    EXPECT_EQ(interp.gpr(12), sum);
    EXPECT_EQ(interp.gpr(11), expect.size());
}

TEST_F(GraphProgram, MergeCountsUnion)
{
    Interpreter interp(mem);
    const VertexId v0 = 1, v1 = 2;
    interp.setGpr(1, g.edgeListAddr(v0));
    interp.setGpr(2, g.degree(v0));
    interp.setGpr(5, g.edgeListAddr(v1));
    interp.setGpr(6, g.degree(v1));
    interp.run(assemble(R"(
        LI r3, 1
        LI r4, 0
        S_READ r1, r2, r3, r4
        LI r7, 2
        S_READ r5, r6, r7, r4
        S_MERGE.C r3, r7, r20
        HALT
    )"));
    EXPECT_EQ(interp.gpr(20),
              streams::merge(g.neighbors(v0), g.neighbors(v1)).count);
}

TEST_F(GraphProgram, ProducedStreamFeedsNextOp)
{
    // (N(a) & N(b)) - N(c): chained stream dependency through sids.
    const VertexId a = 3, b = 4, c = 5;
    Interpreter interp(mem);
    interp.setGpr(1, g.edgeListAddr(a));
    interp.setGpr(2, g.degree(a));
    interp.setGpr(5, g.edgeListAddr(b));
    interp.setGpr(6, g.degree(b));
    interp.setGpr(15, g.edgeListAddr(c));
    interp.setGpr(16, g.degree(c));
    interp.run(assemble(R"(
        LI r3, 1
        LI r4, 0
        S_READ r1, r2, r3, r4
        LI r7, 2
        S_READ r5, r6, r7, r4
        LI r9, 3
        LI r10, -1
        S_INTER r3, r7, r9, r10
        S_FREE r3
        S_FREE r7
        LI r17, 4
        S_READ r15, r16, r17, r4
        S_SUB.C r9, r17, r20, r10
        S_FREE r9
        S_FREE r17
        HALT
    )"));
    std::vector<Key> inter;
    streams::intersect(g.neighbors(a), g.neighbors(b), noBound,
                       &inter);
    EXPECT_EQ(interp.gpr(20),
              streams::subtract(inter, g.neighbors(c)).count);
    EXPECT_EQ(interp.streams().activeCount(), 0u);
}

TEST(IsaPrograms, StepApiWalksOneInstructionAtATime)
{
    MemoryImage mem;
    Interpreter interp(mem);
    const Program p = assemble("LI r1, 5\nADDI r1, r1, 2\nHALT");
    std::uint64_t pc = 0;
    pc = interp.step(p, pc);
    EXPECT_EQ(pc, 1u);
    EXPECT_EQ(interp.gpr(1), 5u);
    pc = interp.step(p, pc);
    EXPECT_EQ(interp.gpr(1), 7u);
    EXPECT_EQ(interp.instructionsExecuted(), 2u);
}

TEST(IsaPrograms, RunawayLoopGuard)
{
    MemoryImage mem;
    Interpreter interp(mem);
    const Program p = assemble("loop: JMP loop");
    EXPECT_THROW(interp.run(p, 1000), SimError);
}
