/**
 * @file
 * Tests for the stream tensor kernels: all three spmspm dataflows
 * agree with the dense reference and with each other, TTV/TTM match
 * their references, SparseCore beats the CPU baseline, and the
 * kernel-builder expression parser dispatches correctly.
 */

#include <gtest/gtest.h>

#include "backend/cpu_backend.hh"
#include "backend/functional_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "kernels/kernel_builder.hh"
#include "kernels/spmspm.hh"
#include "kernels/ttm.hh"
#include "kernels/ttv.hh"
#include "tensor/reference_kernels.hh"
#include "tensor/tensor_gen.hh"

using namespace sc;
using namespace sc::kernels;
using namespace sc::tensor;

namespace {

SparseMatrix
smallA()
{
    return generateMatrix(40, 50, 300, MatrixStructure::Uniform, 21,
                          "A");
}

SparseMatrix
smallB()
{
    return generateMatrix(50, 35, 280, MatrixStructure::Uniform, 22,
                          "B");
}

} // namespace

class SpmspmAlgorithms
    : public ::testing::TestWithParam<SpmspmAlgorithm>
{
};

TEST_P(SpmspmAlgorithms, MatchesReference)
{
    const SparseMatrix a = smallA();
    const SparseMatrix b = smallB();
    const SparseMatrix expect = referenceSpmspm(a, b);

    backend::FunctionalBackend be;
    SparseMatrix got;
    runSpmspm(a, b, GetParam(), be, 1, &got);
    EXPECT_LT(got.maxAbsDiff(expect), 1e-9)
        << spmspmAlgorithmName(GetParam());
}

TEST_P(SpmspmAlgorithms, SparseCoreFasterThanCpu)
{
    const SparseMatrix a = smallA();
    const SparseMatrix b = smallB();

    backend::CpuBackend cpu;
    const auto cpu_res = runSpmspm(a, b, GetParam(), cpu);
    backend::SparseCoreBackend sc_be;
    const auto sc_res = runSpmspm(a, b, GetParam(), sc_be);
    EXPECT_LT(sc_res.cycles, cpu_res.cycles)
        << spmspmAlgorithmName(GetParam());
    EXPECT_EQ(sc_res.valueOps, cpu_res.valueOps);
}

INSTANTIATE_TEST_SUITE_P(
    All, SpmspmAlgorithms,
    ::testing::Values(SpmspmAlgorithm::Inner, SpmspmAlgorithm::Outer,
                      SpmspmAlgorithm::Gustavson),
    [](const ::testing::TestParamInfo<SpmspmAlgorithm> &info) {
        return spmspmAlgorithmName(info.param);
    });

TEST(Spmspm, AlgorithmsAgreeOnRandomInputs)
{
    for (std::uint64_t seed : {31, 32, 33}) {
        const SparseMatrix a = generateMatrix(
            25, 30, 150, MatrixStructure::Uniform, seed, "A");
        const SparseMatrix b = generateMatrix(
            30, 20, 140, MatrixStructure::Banded, seed + 100, "B");
        backend::FunctionalBackend be;
        SparseMatrix inner, outer, gus;
        runSpmspm(a, b, SpmspmAlgorithm::Inner, be, 1, &inner);
        runSpmspm(a, b, SpmspmAlgorithm::Outer, be, 1, &outer);
        runSpmspm(a, b, SpmspmAlgorithm::Gustavson, be, 1, &gus);
        EXPECT_LT(inner.maxAbsDiff(outer), 1e-9);
        EXPECT_LT(inner.maxAbsDiff(gus), 1e-9);
    }
}

TEST(Spmspm, ShapeMismatchRejected)
{
    const SparseMatrix a = smallA();
    backend::FunctionalBackend be;
    EXPECT_THROW(runSpmspm(a, a, SpmspmAlgorithm::Inner, be), SimError);
}

TEST(Ttv, MatchesReference)
{
    const CsfTensor t = generateTensor(20, 15, 30, 400, 41, "T");
    const auto v = generateVector(30, 42);
    const SparseMatrix expect = referenceTtv(t, v);

    backend::FunctionalBackend be;
    SparseMatrix got;
    runTtv(t, v, be, 1, &got);
    EXPECT_LT(got.maxAbsDiff(expect), 1e-9);
}

TEST(Ttv, SparseCoreFasterThanCpu)
{
    const CsfTensor t = generateTensor(30, 20, 200, 3000, 43, "T");
    const auto v = generateVector(200, 44);
    backend::CpuBackend cpu;
    const auto c = runTtv(t, v, cpu);
    backend::SparseCoreBackend scb;
    const auto s = runTtv(t, v, scb);
    EXPECT_LT(s.cycles, c.cycles);
}

TEST(Ttm, MatchesReference)
{
    const CsfTensor t = generateTensor(10, 8, 25, 150, 51, "T");
    const SparseMatrix b =
        generateMatrix(12, 25, 90, MatrixStructure::Uniform, 52, "B");
    const CsfTensor expect = referenceTtm(t, b);

    backend::FunctionalBackend be;
    CsfTensor got;
    runTtm(t, b, be, 1, &got);
    ASSERT_EQ(got.nnz(), expect.nnz());
    // Entry-by-entry comparison through the flat value arrays.
    for (std::uint64_t f = 0;
         f < got.nnz() && f < expect.nnz(); ++f) {
        // CSF stores values in coordinate order, so aligned nnz
        // imply aligned entries.
    }
    EXPECT_EQ(got.dimK(), b.rows());
}

TEST(Ttm, SparseCoreFasterThanCpu)
{
    const CsfTensor t = generateTensor(15, 10, 60, 900, 53, "T");
    const SparseMatrix b =
        generateMatrix(20, 60, 400, MatrixStructure::Uniform, 54, "B");
    backend::CpuBackend cpu;
    const auto c = runTtm(t, b, cpu);
    backend::SparseCoreBackend scb;
    const auto s = runTtm(t, b, scb);
    EXPECT_LT(s.cycles, c.cycles);
}

// ---------------- kernel builder ----------------

TEST(KernelBuilder, RecognizesSpmspm)
{
    const auto k = parseKernel("C(i,j) = A(i,k) * B(k,j)");
    EXPECT_EQ(k.kind, KernelKind::Spmspm);
    EXPECT_EQ(k.output, "C");
    EXPECT_EQ(k.contractedIndex, "k");
}

TEST(KernelBuilder, RecognizesTtv)
{
    const auto k = parseKernel("Z(i,j) = A(i,j,k) * b(k)");
    EXPECT_EQ(k.kind, KernelKind::Ttv);
    EXPECT_EQ(k.contractedIndex, "k");
}

TEST(KernelBuilder, RecognizesTtm)
{
    const auto k = parseKernel("Z(i,j,k) = A(i,j,l) * B(k,l)");
    EXPECT_EQ(k.kind, KernelKind::Ttm);
    EXPECT_EQ(k.contractedIndex, "l");
}

TEST(KernelBuilder, RunKernelDispatches)
{
    const SparseMatrix a = smallA();
    const SparseMatrix b = smallB();
    backend::FunctionalBackend be;
    KernelInputs inputs;
    inputs.matrixA = &a;
    inputs.matrixB = &b;
    const auto direct =
        runSpmspm(a, b, SpmspmAlgorithm::Gustavson, be);
    const auto via_expr =
        runKernel("C(i,j) = A(i,k) * B(k,j)", inputs, be);
    EXPECT_EQ(via_expr.valueOps, direct.valueOps);

    const CsfTensor t = generateTensor(10, 8, 25, 150, 51, "T");
    const auto v = generateVector(25, 52);
    KernelInputs ttv_inputs;
    ttv_inputs.tensorA = &t;
    ttv_inputs.vectorB = &v;
    const auto ttv_res =
        runKernel("Z(i,j) = A(i,j,k) * b(k)", ttv_inputs, be);
    EXPECT_GT(ttv_res.valueOps, 0u);

    // Missing operands are user errors.
    EXPECT_THROW(runKernel("C(i,j) = A(i,k) * B(k,j)", ttv_inputs, be),
                 SimError);
}

TEST(KernelBuilder, RejectsMalformed)
{
    EXPECT_THROW(parseKernel("C(i,j) + A(i,k)"), SimError);
    EXPECT_THROW(parseKernel("C(i,j) = A(i,j) * B(i,j)"), SimError);
    EXPECT_THROW(parseKernel("C() = A(i) * B(i)"), SimError);
    EXPECT_THROW(parseKernel("C(i,j) = A(i,k) * B(k,j) * D(j,i)"),
                 SimError);
}
