/**
 * @file
 * Tests for dataset file I/O: SNAP edge lists and MatrixMarket
 * coordinate files, including round trips and malformed input.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "graph/generators.hh"
#include "graph/io.hh"
#include "tensor/tensor_gen.hh"

using namespace sc;

TEST(EdgeListIo, ParsesSnapFormat)
{
    std::istringstream in(R"(# Directed graph: example
# Nodes: 4 Edges: 3
10 20
20 30
10	40
)");
    const auto g = graph::loadEdgeList(in, "snap");
    EXPECT_EQ(g.numVertices(), 4u); // ids compacted
    EXPECT_EQ(g.numEdges(), 3u);
    // 10 -> 0, 20 -> 1, 30 -> 2, 40 -> 3 (sorted compaction).
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 2));
    EXPECT_TRUE(g.hasEdge(0, 3));
}

TEST(EdgeListIo, DropsCommentsAndDuplicates)
{
    std::istringstream in("% comment\n1 2\n2 1\n1 1\n1 2\n");
    const auto g = graph::loadEdgeList(in);
    EXPECT_EQ(g.numEdges(), 1u);
}

TEST(EdgeListIo, RejectsGarbage)
{
    std::istringstream bad("1 banana\n");
    EXPECT_THROW(graph::loadEdgeList(bad), SimError);
    std::istringstream empty("# nothing\n");
    EXPECT_THROW(graph::loadEdgeList(empty), SimError);
}

TEST(EdgeListIo, RoundTrip)
{
    const auto g =
        graph::generateErdosRenyi(200, 800, 33, "roundtrip");
    std::ostringstream out;
    graph::saveEdgeList(g, out);
    std::istringstream in(out.str());
    const auto g2 = graph::loadEdgeList(in, "roundtrip");
    EXPECT_EQ(g2.numEdges(), g.numEdges());
    for (VertexId v = 0; v < 200; v += 17)
        for (VertexId u : g.neighbors(v))
            EXPECT_TRUE(g2.hasEdge(v, u));
}

TEST(MatrixMarketIo, ParsesGeneralReal)
{
    std::istringstream in(R"(%%MatrixMarket matrix coordinate real general
% a comment
3 4 3
1 1 2.5
2 3 -1.0
3 4 7
)");
    const auto m = tensor::loadMatrixMarket(in, "mm");
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.nnz(), 3u);
    EXPECT_DOUBLE_EQ(m.rowVals(0)[0], 2.5);
    EXPECT_EQ(m.rowKeys(2)[0], 3u);
}

TEST(MatrixMarketIo, ExpandsSymmetric)
{
    std::istringstream in(R"(%%MatrixMarket matrix coordinate real symmetric
3 3 2
2 1 5.0
3 3 1.0
)");
    const auto m = tensor::loadMatrixMarket(in);
    EXPECT_EQ(m.nnz(), 3u); // (2,1) mirrored, diagonal not
    EXPECT_DOUBLE_EQ(m.rowVals(0)[0], 5.0); // mirrored (1,2)
}

TEST(MatrixMarketIo, PatternGetsUnitValues)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n"
        "1 2\n");
    const auto m = tensor::loadMatrixMarket(in);
    EXPECT_DOUBLE_EQ(m.rowVals(0)[0], 1.0);
}

TEST(MatrixMarketIo, RejectsBadInput)
{
    std::istringstream notmm("1 2 3\n");
    EXPECT_THROW(tensor::loadMatrixMarket(notmm), SimError);
    std::istringstream complex_field(
        "%%MatrixMarket matrix coordinate complex general\n1 1 0\n");
    EXPECT_THROW(tensor::loadMatrixMarket(complex_field), SimError);
    std::istringstream out_of_range(
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n"
        "3 1 1.0\n");
    EXPECT_THROW(tensor::loadMatrixMarket(out_of_range), SimError);
    std::istringstream truncated(
        "%%MatrixMarket matrix coordinate real general\n2 2 2\n"
        "1 1 1.0\n");
    EXPECT_THROW(tensor::loadMatrixMarket(truncated), SimError);
}

TEST(MatrixMarketIo, RoundTrip)
{
    const auto m = tensor::generateMatrix(
        30, 40, 150, tensor::MatrixStructure::Uniform, 44, "rt");
    std::ostringstream out;
    tensor::saveMatrixMarket(m, out);
    std::istringstream in(out.str());
    const auto m2 = tensor::loadMatrixMarket(in, "rt");
    EXPECT_LT(m.maxAbsDiff(m2), 1e-9);
}

TEST(Io, MissingFilesFatal)
{
    EXPECT_THROW(graph::loadEdgeListFile("/nonexistent/graph.txt"),
                 SimError);
    EXPECT_THROW(
        tensor::loadMatrixMarketFile("/nonexistent/matrix.mtx"),
        SimError);
}
