/**
 * @file
 * Tests for the hybrid bitmap/array stream set index
 * (streams/setindex): policy machinery, degree-ordered relabeling,
 * bitmap format selection, registry lifetime, and — the load-bearing
 * invariant — bit-identical outputs AND bit-identical SetOpResult
 * work summaries across IndexPolicy::{Auto, ArrayOnly, Bitmap} on
 * graph-resident operands, with simulated cycles pinned by
 * golden-trace replay, Machine comparisons and parallel mining under
 * every policy.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "api/machine.hh"
#include "api/parallel.hh"
#include "backend/cpu_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "common/rng.hh"
#include "graph/generators.hh"
#include "isa/assembler.hh"
#include "isa/interpreter.hh"
#include "streams/set_ops.hh"
#include "streams/setindex/hybrid.hh"
#include "streams/setindex/policy.hh"
#include "streams/setindex/registry.hh"
#include "streams/setindex/set_index.hh"
#include "test_util.hh"
#include "trace/replay.hh"
#include "trace/trace.hh"

using namespace sc;
using namespace sc::streams;
using namespace sc::streams::setindex;

namespace {

constexpr IndexPolicy allPolicies[] = {
    IndexPolicy::Auto, IndexPolicy::ArrayOnly, IndexPolicy::Bitmap};

void
expectSameResult(const SetOpResult &ref, const SetOpResult &got,
                 const std::string &what)
{
    EXPECT_EQ(ref.count, got.count) << what;
    EXPECT_EQ(ref.steps, got.steps) << what;
    EXPECT_EQ(ref.aConsumed, got.aConsumed) << what;
    EXPECT_EQ(ref.bConsumed, got.bConsumed) << what;
}

/** A hub-heavy adversarial graph: `hubs` mutually-adjacent vertices
 *  that are also adjacent to every spoke, plus a sparse spoke ring.
 *  Hub lists are long and (after degree relabeling) extremely dense
 *  in rank space; spoke lists are short and mostly hub-valued. */
graph::CsrGraph
hubGraph(VertexId hubs, VertexId spokes)
{
    const VertexId n = hubs + spokes;
    std::vector<std::vector<VertexId>> adj(n);
    for (VertexId h = 0; h < hubs; ++h) {
        for (VertexId o = 0; o < n; ++o)
            if (o != h)
                adj[h].push_back(o);
        for (VertexId o = 0; o < n; ++o)
            if (o >= hubs)
                adj[o].push_back(h);
    }
    for (VertexId s = hubs; s < n; ++s) {
        const VertexId t = s + 1 < n ? s + 1 : hubs;
        if (t != s) {
            adj[s].push_back(t);
            adj[t].push_back(s);
        }
    }
    std::vector<std::uint64_t> offsets = {0};
    std::vector<VertexId> edges;
    for (VertexId v = 0; v < n; ++v) {
        std::sort(adj[v].begin(), adj[v].end());
        adj[v].erase(std::unique(adj[v].begin(), adj[v].end()),
                     adj[v].end());
        edges.insert(edges.end(), adj[v].begin(), adj[v].end());
        offsets.push_back(edges.size());
    }
    return graph::CsrGraph(std::move(offsets), std::move(edges), "hub");
}

/** The operand-span shapes the executors actually pass to runSetOp. */
std::vector<KeySpan>
spanShapes(const graph::CsrGraph &g, VertexId v)
{
    std::vector<KeySpan> shapes;
    shapes.push_back(g.neighbors(v));
    shapes.push_back(g.neighborsAbove(v));
    shapes.push_back(g.neighborsBelow(v));
    const auto full = g.neighbors(v);
    if (full.size() > 2)
        shapes.push_back(full.first(full.size() / 2)); // prefix slice
    return shapes;
}

std::vector<Key>
boundsFor(KeySpan a, KeySpan b)
{
    std::vector<Key> bounds = {noBound, 0};
    if (!a.empty())
        bounds.push_back(a[a.size() / 2]);
    if (!b.empty()) {
        bounds.push_back(b.back());
        bounds.push_back(b.back() + 1);
    }
    return bounds;
}

/** Reference vs every policy, materializing and counting forms. */
void
checkAllPolicies(KeySpan a, KeySpan b, const std::string &ctx)
{
    for (const Key bound : boundsFor(a, b)) {
        for (const auto kind : {SetOpKind::Intersect, SetOpKind::Subtract,
                                SetOpKind::Merge}) {
            const Key kbound =
                kind == SetOpKind::Merge ? noBound : bound;
            std::vector<Key> ref_out;
            SetOpResult ref;
            switch (kind) {
              case SetOpKind::Intersect:
                ref = intersect(a, b, kbound, &ref_out);
                break;
              case SetOpKind::Subtract:
                ref = subtract(a, b, kbound, &ref_out);
                break;
              case SetOpKind::Merge:
                ref = merge(a, b, &ref_out);
                break;
            }
            for (const IndexPolicy policy : allPolicies) {
                ScopedIndexPolicyOverride forced(policy);
                const std::string what =
                    ctx + " " + setOpName(kind) + " policy=" +
                    indexPolicyName(policy) + " |a|=" +
                    std::to_string(a.size()) + " |b|=" +
                    std::to_string(b.size()) + " bound=" +
                    std::to_string(kbound);
                std::vector<Key> out = {99999};
                const SetOpResult got =
                    runSetOp(kind, a, b, kbound, &out);
                expectSameResult(ref, got, what);
                ASSERT_EQ(out.size(), ref_out.size() + 1) << what;
                EXPECT_EQ(out.front(), 99999u) << what;
                EXPECT_TRUE(std::equal(ref_out.begin(), ref_out.end(),
                                       out.begin() + 1))
                    << what;
                expectSameResult(ref,
                                 runSetOpCount(kind, a, b, kbound),
                                 what + " (.C)");
            }
        }
    }
}

} // namespace

// ---------------- policy machinery ----------------

TEST(SetIndexPolicy, ParseRoundTrips)
{
    for (const IndexPolicy policy : allPolicies)
        EXPECT_EQ(parseIndexPolicy(indexPolicyName(policy)), policy);
    EXPECT_FALSE(parseIndexPolicy("").has_value());
    EXPECT_FALSE(parseIndexPolicy("hybrid").has_value());
    EXPECT_FALSE(parseIndexPolicy("Bitmap").has_value());
}

TEST(SetIndexPolicy, OverrideIsScopedAndNests)
{
    const IndexPolicy def = activeIndexPolicy();
    {
        ScopedIndexPolicyOverride outer(IndexPolicy::ArrayOnly);
        EXPECT_EQ(activeIndexPolicy(), IndexPolicy::ArrayOnly);
        for (const IndexPolicy policy : allPolicies) {
            ScopedIndexPolicyOverride inner(policy);
            EXPECT_EQ(activeIndexPolicy(), policy);
        }
        EXPECT_EQ(activeIndexPolicy(), IndexPolicy::ArrayOnly);
    }
    EXPECT_EQ(activeIndexPolicy(), def);
}

// ---------------- index construction ----------------

TEST(SetIndexBuild, PermutationIsDegreeDescendingAndBijective)
{
    for (const auto &g :
         {test::randomTestGraph(150, 1100, 11),
          graph::generateChungLu(300, 2500, 120, 2.1, 7), hubGraph(24, 60)}) {
        const auto idx = g.setIndex();
        ASSERT_NE(idx, nullptr) << g.name();
        ASSERT_EQ(idx->numVertices(), g.numVertices());
        for (std::uint32_t r = 0; r + 1 < g.numVertices(); ++r) {
            const Key u = idx->originalId(r);
            const Key v = idx->originalId(r + 1);
            // Descending degree, ties broken by ascending id: rank
            // order is a strict total order, so perm is reproducible.
            const bool ordered =
                g.degree(u) > g.degree(v) ||
                (g.degree(u) == g.degree(v) && u < v);
            EXPECT_TRUE(ordered)
                << g.name() << " rank " << r << ": deg(" << u
                << ")=" << g.degree(u) << " deg(" << v
                << ")=" << g.degree(v);
        }
        for (Key v = 0; v < g.numVertices(); ++v)
            EXPECT_EQ(idx->originalId(idx->rank(v)), v);
    }
}

TEST(SetIndexBuild, BitmapFormatSelection)
{
    const auto g = hubGraph(24, 60);
    const auto idx = g.setIndex();
    ASSERT_NE(idx, nullptr);
    // Hubs are adjacent to everything: their lists are dense over the
    // whole rank space, far inside the auto tier.
    EXPECT_GT(idx->numAutoBitmaps(), 0u);
    EXPECT_GE(idx->numBitmaps(), idx->numAutoBitmaps());
    std::uint64_t with_bitmap = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        const auto bm = idx->bitmap(v);
        if (g.degree(v) < idx->params().minBitmapDegree) {
            EXPECT_FALSE(bm.valid()) << "short list " << v;
        }
        if (!bm.valid())
            continue;
        ++with_bitmap;
        // Chunk budget honored.
        EXPECT_LE(bm.numWords,
                  g.degree(v) * idx->params().maxWordsPerKey);
        // Membership agrees exactly with the adjacency list.
        for (Key k = 0; k < g.numVertices(); ++k)
            EXPECT_EQ(idx->contains(bm, k), g.hasEdge(v, k))
                << "v=" << v << " k=" << k;
        // Out-of-universe keys never hit.
        EXPECT_FALSE(idx->contains(bm, g.numVertices()));
        EXPECT_FALSE(idx->contains(bm, noBound));
    }
    EXPECT_EQ(with_bitmap, idx->numBitmaps());
}

TEST(SetIndexBuild, RejectsNonVertexKeysAndEmptyGraphs)
{
    // Synthetic CSR with a key outside [0, numVertices): unindexable.
    const std::vector<std::uint64_t> offsets = {0, 2};
    const std::vector<Key> edges = {1, 500};
    EXPECT_EQ(StreamSetIndex::build(offsets, edges), nullptr);
    EXPECT_EQ(StreamSetIndex::build({}, {}), nullptr);
    EXPECT_EQ(StreamSetIndex::build({0}, {}), nullptr);
}

// ---------------- registry lifetime ----------------

TEST(SetIndexRegistry, LifetimeAcrossCopyMoveDestroy)
{
    const std::size_t base = registrySize();
    {
        auto g = test::randomTestGraph(80, 500, 3);
        ASSERT_NE(g.setIndex(), nullptr);
        EXPECT_EQ(registrySize(), base + 1);

        graph::CsrGraph copy = g;
        EXPECT_EQ(registrySize(), base + 2);
        // The copy shares the immutable index but registers its own
        // edge-array range.
        EXPECT_EQ(copy.setIndex().get(), g.setIndex().get());
        ResolvedSpan rs;
        ASSERT_TRUE(resolveSpan(copy.neighbors(5), rs));
        EXPECT_EQ(rs.index, copy.setIndex().get());
        EXPECT_EQ(rs.vertex, 5u);
        EXPECT_TRUE(rs.fullList);

        graph::CsrGraph moved = std::move(copy);
        EXPECT_EQ(registrySize(), base + 2);
        ASSERT_TRUE(resolveSpan(moved.neighbors(5), rs));
        EXPECT_EQ(rs.vertex, 5u);

        moved = graph::CsrGraph();
        EXPECT_EQ(registrySize(), base + 1);
    }
    EXPECT_EQ(registrySize(), base);
}

TEST(SetIndexRegistry, ResolveSpanShapes)
{
    const auto g = hubGraph(24, 60);
    ASSERT_NE(g.setIndex(), nullptr);
    // Pick a hub with neighbors on both sides of its own id.
    const VertexId v = 10;
    ResolvedSpan rs;

    ASSERT_TRUE(resolveSpan(g.neighbors(v), rs));
    EXPECT_EQ(rs.vertex, v);
    EXPECT_TRUE(rs.fullList);

    ASSERT_TRUE(resolveSpan(g.neighborsAbove(v), rs));
    EXPECT_EQ(rs.vertex, v);
    EXPECT_FALSE(rs.fullList);

    ASSERT_TRUE(resolveSpan(g.neighborsBelow(v), rs));
    EXPECT_EQ(rs.vertex, v);
    EXPECT_FALSE(rs.fullList);

    const auto prefix = g.neighbors(v).first(g.degree(v) / 2);
    ASSERT_TRUE(resolveSpan(prefix, rs));
    EXPECT_EQ(rs.vertex, v);
    EXPECT_FALSE(rs.fullList);

    // Heap copies of a list are NOT the registered storage.
    const auto n = g.neighbors(v);
    std::vector<Key> heap(n.begin(), n.end());
    EXPECT_FALSE(resolveSpan(heap, rs));

    // Empty spans never resolve.
    EXPECT_FALSE(resolveSpan(KeySpan{}, rs));

    // A span straddling a row boundary is rejected (possible only for
    // hand-built spans; executors never produce one).
    const auto &edges = g.edges();
    const auto &offsets = g.offsets();
    const KeySpan straddle{edges.data() + offsets[v],
                           static_cast<std::size_t>(g.degree(v) + 1)};
    ASSERT_LE(offsets[v] + straddle.size(), edges.size());
    EXPECT_FALSE(resolveSpan(straddle, rs));
}

// ---------------- cross-policy bit-identity ----------------

class SetIndexProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SetIndexProperty, PoliciesBitIdenticalOnGraphSpans)
{
    const std::uint64_t seed = GetParam();
    const auto er = test::randomTestGraph(140, 1000, seed);
    const auto pl = graph::generateChungLu(260, 2200, 100, 2.1, seed);
    const auto hub = hubGraph(20, 50);
    Rng rng(seed * 31 + 1);
    for (const graph::CsrGraph *g : {&er, &pl, &hub}) {
        ASSERT_NE(g->setIndex(), nullptr) << g->name();
        for (int pair = 0; pair < 8; ++pair) {
            const auto u =
                static_cast<VertexId>(rng.below(g->numVertices()));
            const auto v =
                static_cast<VertexId>(rng.below(g->numVertices()));
            for (const KeySpan a : spanShapes(*g, u))
                for (const KeySpan b : spanShapes(*g, v))
                    checkAllPolicies(a, b,
                                     g->name() + " u=" +
                                         std::to_string(u) + " v=" +
                                         std::to_string(v));
        }
    }
}

TEST_P(SetIndexProperty, MixedGraphAndHeapOperands)
{
    const auto g = hubGraph(20, 50);
    ASSERT_NE(g.setIndex(), nullptr);
    Rng rng(GetParam() ^ 0x5e7);
    for (int iter = 0; iter < 6; ++iter) {
        const auto v = static_cast<VertexId>(rng.below(g.numVertices()));
        // A heap-resident operand (an executor arena buffer, say):
        // only the graph side can use a bitmap.
        std::vector<Key> heap;
        for (Key k = 0; k < g.numVertices(); ++k)
            if (rng.below(3) == 0)
                heap.push_back(k);
        checkAllPolicies(g.neighbors(v), heap, "graph-x-heap");
        checkAllPolicies(heap, g.neighbors(v), "heap-x-graph");
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetIndexProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ---------------- interpreter operands ----------------

TEST(SetIndexInterpreter, StreamOpsBitIdenticalAcrossPolicies)
{
    // Graph-backed memory image: the interpreter's zero-copy operand
    // spans alias the live edge array, so S_INTER.C operands resolve
    // in the registry and take the hybrid path under Auto/Bitmap.
    const auto g = hubGraph(18, 40);
    ASSERT_NE(g.setIndex(), nullptr);
    isa::MemoryImage mem;
    mem.addSegment(g.vertexArrayBase(), g.offsets().data(),
                   g.offsets().size() * sizeof(std::uint64_t));
    mem.addSegment(g.edgeArrayBase(), g.edges().data(),
                   g.edges().size() * sizeof(VertexId));

    const isa::Program kernel = isa::assemble(R"(
        LI r3, 1
        LI r4, 0
        S_READ r1, r2, r3, r4
        LI r7, 2
        S_READ r5, r6, r7, r4
        S_INTER.C r3, r7, r20, r10
        S_FREE r3
        S_FREE r7
        HALT
    )");

    std::vector<std::uint64_t> ref;
    bool first = true;
    for (const IndexPolicy policy : allPolicies) {
        ScopedIndexPolicyOverride forced(policy);
        std::vector<std::uint64_t> counts;
        isa::Interpreter interp(mem);
        for (VertexId u = 0; u < g.numVertices(); u += 3) {
            for (VertexId v : g.neighbors(u)) {
                interp.setGpr(1, g.edgeListAddr(u));
                interp.setGpr(2, g.degree(u));
                interp.setGpr(5, g.edgeListAddr(v));
                interp.setGpr(6, g.degree(v));
                interp.setGpr(10, v); // R3 bound: count below v
                interp.run(kernel);
                counts.push_back(interp.gpr(20));
            }
        }
        if (first) {
            ref = counts;
            first = false;
        } else {
            EXPECT_EQ(counts, ref) << indexPolicyName(policy);
        }
    }
}

// ---------------- simulated-cycle invariance ----------------

TEST(SetIndexCycles, GoldenTraceReplayInvariantAcrossPolicies)
{
    const std::string path =
        std::string(SPARSECORE_TEST_DATA_DIR) + "/golden_trace.bin";
    const trace::Trace golden = trace::Trace::loadFile(path);
    const arch::SparseCoreConfig config;

    Cycles cpu_ref = 0, sc_ref = 0;
    bool first = true;
    for (const IndexPolicy policy : allPolicies) {
        ScopedIndexPolicyOverride forced(policy);
        backend::CpuBackend cpu(config.core, config.mem);
        backend::SparseCoreBackend sc(config);
        const Cycles cpu_cycles = trace::replay(golden, cpu).cycles;
        const Cycles sc_cycles = trace::replay(golden, sc).cycles;
        if (first) {
            cpu_ref = cpu_cycles;
            sc_ref = sc_cycles;
            first = false;
            continue;
        }
        EXPECT_EQ(cpu_cycles, cpu_ref)
            << "CPU replay cycles moved under policy "
            << indexPolicyName(policy);
        EXPECT_EQ(sc_cycles, sc_ref)
            << "SparseCore replay cycles moved under policy "
            << indexPolicyName(policy);
    }
}

TEST(SetIndexCycles, MachineComparisonInvariantAcrossPolicies)
{
    const auto g = graph::generateChungLu(220, 1800, 90, 2.1, 23);
    api::Machine machine;

    std::uint64_t emb_ref = 0;
    Cycles cpu_ref = 0, sc_ref = 0;
    bool first = true;
    for (const IndexPolicy policy : allPolicies) {
        api::RunOptions opts;
        opts.indexPolicy = policy;
        const auto cmp = machine.compare(
            api::RunRequest::gpm(gpm::GpmApp::T, g, opts));
        if (first) {
            emb_ref = cmp.functionalResult;
            cpu_ref = cmp.baseline.cycles;
            sc_ref = cmp.accelerated.cycles;
            first = false;
            continue;
        }
        EXPECT_EQ(cmp.functionalResult, emb_ref)
            << indexPolicyName(policy);
        EXPECT_EQ(cmp.baseline.cycles, cpu_ref)
            << indexPolicyName(policy);
        EXPECT_EQ(cmp.accelerated.cycles, sc_ref)
            << indexPolicyName(policy);
    }
}

TEST(SetIndexCycles, ParallelMiningDeterministicAcrossPolicies)
{
    const auto g = test::randomTestGraph(150, 1200, 29);
    std::uint64_t emb_ref = 0;
    Cycles cyc_ref = 0;
    bool first = true;
    for (const IndexPolicy policy : allPolicies) {
        api::HostOptions host;
        host.indexPolicy = policy;
        const auto par = api::mineParallelSparseCore(
            gpm::GpmApp::C4, g, 3, arch::SparseCoreConfig{}, 1, host);
        if (first) {
            emb_ref = par.embeddings;
            cyc_ref = par.cycles;
            first = false;
            continue;
        }
        EXPECT_EQ(par.embeddings, emb_ref) << indexPolicyName(policy);
        EXPECT_EQ(par.cycles, cyc_ref) << indexPolicyName(policy);
    }
}

// ---------------- (key,value) relabel round trip ----------------

namespace {

/** A sorted kv stream over the graph's vertex universe with exactly
 *  representable (integer) values, so every accumulation order is
 *  FP-exact and equality checks are legitimately bitwise. */
void
randomKvStream(Rng &rng, VertexId universe, std::size_t n,
               std::vector<Key> &keys, std::vector<Value> &vals)
{
    keys.clear();
    vals.clear();
    for (Key k = 0; k < universe && keys.size() < n; ++k)
        if (rng.below(2) == 0)
            keys.push_back(k);
    for (std::size_t i = 0; i < keys.size(); ++i)
        vals.push_back(static_cast<Value>(1 + rng.below(1000)));
}

} // namespace

TEST(SetIndexRelabel, KvRoundTripLossless)
{
    const auto g = graph::generateChungLu(200, 1500, 80, 2.1, 5);
    const auto idx = g.setIndex();
    ASSERT_NE(idx, nullptr);
    Rng rng(99);
    for (int iter = 0; iter < 16; ++iter) {
        std::vector<Key> keys;
        std::vector<Value> vals;
        randomKvStream(rng, g.numVertices(), 64, keys, vals);

        std::vector<Key> rk, back_k;
        std::vector<Value> rv, back_v;
        idx->relabel(keys, vals, rk, rv);
        ASSERT_EQ(rk.size(), keys.size());
        EXPECT_TRUE(std::is_sorted(rk.begin(), rk.end()));
        // Rank keys pair with their original values.
        for (std::size_t i = 0; i < rk.size(); ++i) {
            const Key orig = idx->originalId(rk[i]);
            const auto it =
                std::lower_bound(keys.begin(), keys.end(), orig);
            ASSERT_TRUE(it != keys.end() && *it == orig);
            EXPECT_EQ(rv[i],
                      vals[static_cast<std::size_t>(it - keys.begin())]);
        }
        idx->restore(rk, rv, back_k, back_v);
        EXPECT_EQ(back_k, keys);
        EXPECT_EQ(back_v, vals);

        // Key-only streams round-trip the same way.
        std::vector<Key> rk2, back_k2;
        std::vector<Value> none, none_out;
        idx->relabel(keys, none, rk2, none);
        EXPECT_EQ(rk2, rk);
        idx->restore(rk2, none, back_k2, none_out);
        EXPECT_EQ(back_k2, keys);
        EXPECT_TRUE(none_out.empty());
    }
}

TEST(SetIndexRelabel, ValueOpsEquivalentThroughRankSpace)
{
    // S_VINTER / S_VMERGE semantics survive a relabel->compute->
    // restore round trip: the same key pairs match (a bijection
    // preserves equality), so with exactly-representable values the
    // results are bitwise identical to computing in original space.
    const auto g = graph::generateChungLu(200, 1500, 80, 2.1, 6);
    const auto idx = g.setIndex();
    ASSERT_NE(idx, nullptr);
    Rng rng(1234);
    for (int iter = 0; iter < 12; ++iter) {
        std::vector<Key> ak, bk;
        std::vector<Value> av, bv;
        randomKvStream(rng, g.numVertices(), 80, ak, av);
        randomKvStream(rng, g.numVertices(), 80, bk, bv);

        std::vector<Key> rak, rbk;
        std::vector<Value> rav, rbv;
        idx->relabel(ak, av, rak, rav);
        idx->relabel(bk, bv, rbk, rbv);

        for (const auto op :
             {ValueOp::Mac, ValueOp::MaxAcc, ValueOp::MinAcc}) {
            const Value ref = valueIntersect(ak, av, bk, bv, op);
            const Value got = valueIntersect(rak, rav, rbk, rbv, op);
            EXPECT_EQ(ref, got) << valueOpName(op);
        }

        std::vector<Key> mk_ref, mk_rank, mk_back;
        std::vector<Value> mv_ref, mv_rank, mv_back;
        valueMerge(ak, av, bk, bv, 2.0, 3.0, mk_ref, mv_ref);
        valueMerge(rak, rav, rbk, rbv, 2.0, 3.0, mk_rank, mv_rank);
        idx->restore(mk_rank, mv_rank, mk_back, mv_back);
        EXPECT_EQ(mk_back, mk_ref);
        EXPECT_EQ(mv_back, mv_ref);
    }
}
