/**
 * @file
 * Backend-specific behaviours: the CPU baseline's merge-loop costs,
 * galloping on skewed operands, workspace-style merge accumulation,
 * the dense-gather TTV path, and SparseCore backend plumbing.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "backend/cpu_backend.hh"
#include "backend/functional_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "common/rng.hh"

using namespace sc;
using namespace sc::backend;
using streams::SetOpKind;

namespace {

std::vector<Key>
sortedKeys(Rng &rng, std::size_t n, Key universe)
{
    std::vector<Key> v;
    while (v.size() < n)
        v.push_back(static_cast<Key>(rng.below(universe)));
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
}

} // namespace

TEST(CpuBackend, CostScalesWithWork)
{
    Rng rng(1);
    const auto small_a = sortedKeys(rng, 50, 10000);
    const auto small_b = sortedKeys(rng, 50, 10000);
    const auto big_a = sortedKeys(rng, 2000, 100000);
    const auto big_b = sortedKeys(rng, 2000, 100000);

    CpuBackend cpu;
    cpu.begin();
    auto h1 = cpu.streamLoad(0x1000, small_a.size(), 0, small_a);
    auto h2 = cpu.streamLoad(0x9000, small_b.size(), 0, small_b);
    cpu.setOpCount(SetOpKind::Intersect, h1, h2, small_a, small_b,
                   noBound, 0);
    const Cycles small_cost = cpu.finish();

    CpuBackend cpu2;
    cpu2.begin();
    h1 = cpu2.streamLoad(0x1000, big_a.size(), 0, big_a);
    h2 = cpu2.streamLoad(0x9000, big_b.size(), 0, big_b);
    cpu2.setOpCount(SetOpKind::Intersect, h1, h2, big_a, big_b,
                    noBound, 0);
    const Cycles big_cost = cpu2.finish();
    EXPECT_GT(big_cost, 10 * small_cost);
}

TEST(CpuBackend, GallopsOnSkewedOperands)
{
    // Short list vs 100x longer list: the galloping path must be far
    // cheaper than walking the long operand.
    Rng rng(2);
    const auto small = sortedKeys(rng, 16, 1u << 30);
    const auto huge = sortedKeys(rng, 8000, 1u << 30);

    CpuBackend gallop;
    gallop.begin();
    auto h1 = gallop.streamLoad(0x1000, small.size(), 0, small);
    auto h2 = gallop.streamLoad(0x90000, huge.size(), 0, huge);
    gallop.setOpCount(SetOpKind::Intersect, h1, h2, small, huge,
                      noBound, 0);
    const Cycles gallop_cost = gallop.finish();

    // Comparable-length operands of the same total size walk fully.
    const auto half_a = sortedKeys(rng, 4000, 1u << 30);
    const auto half_b = sortedKeys(rng, 4016, 1u << 30);
    CpuBackend walk;
    walk.begin();
    h1 = walk.streamLoad(0x1000, half_a.size(), 0, half_a);
    h2 = walk.streamLoad(0x90000, half_b.size(), 0, half_b);
    walk.setOpCount(SetOpKind::Intersect, h1, h2, half_a, half_b,
                    noBound, 0);
    const Cycles walk_cost = walk.finish();
    EXPECT_LT(gallop_cost * 10, walk_cost);
}

TEST(CpuBackend, WorkspaceMergeLinearInUpdates)
{
    // valueMerge models a dense workspace: cost ~ |B| updates, not
    // the merge walk of |acc| + |B|.
    Rng rng(3);
    const auto acc = sortedKeys(rng, 5000, 100000);
    std::vector<Value> acc_vals(acc.size(), 1.0);
    const auto row = sortedKeys(rng, 50, 100000);

    CpuBackend cpu;
    cpu.begin();
    auto ha = cpu.streamLoadKv(0x1000, 0x200000, acc.size(), 0, acc);
    auto hb = cpu.streamLoadKv(0x400000, 0x500000, row.size(), 0, row);
    cpu.valueMerge(ha, hb, acc, row, 0x200000, 0x500000,
                   acc.size() + row.size(), 0x600000);
    const Cycles cost = cpu.finish();
    // Walking 5050 elements at several cycles each would exceed 15K
    // cycles; the workspace path only pays for the 50 updates.
    EXPECT_LT(cost, 4000u);
}

TEST(CpuBackend, DenseGatherCheaperThanWalk)
{
    // TTV path: a 64-element fiber against a 16K-long dense vector.
    // Each variant runs twice and the warm (second) pass is measured,
    // so cold-cache fills don't dominate the tiny gather loop.
    std::vector<Key> fiber;
    for (Key k = 0; k < 64; ++k)
        fiber.push_back(k * 256);
    std::vector<Key> dense(16384);
    std::iota(dense.begin(), dense.end(), Key{0});
    std::vector<std::uint32_t> ma(64), mb(64);
    for (std::uint32_t i = 0; i < 64; ++i) {
        ma[i] = i;
        mb[i] = fiber[i];
    }

    CpuBackend gather;
    gather.begin();
    auto hf = gather.streamLoadKv(0x1000, 0x2000, fiber.size(), 0,
                                  fiber);
    auto hv = gather.streamLoadKv(0x100000, 0x200000, dense.size(), 0,
                                  dense);
    gather.denseValueIntersect(hf, hv, fiber, dense, 0x2000, 0x200000,
                               ma, mb);
    const Cycles gather_cold = gather.finish();
    gather.denseValueIntersect(hf, hv, fiber, dense, 0x2000, 0x200000,
                               ma, mb);
    const Cycles gather_warm = gather.finish() - gather_cold;

    CpuBackend walk;
    walk.begin();
    hf = walk.streamLoadKv(0x1000, 0x2000, fiber.size(), 0, fiber);
    hv = walk.streamLoadKv(0x100000, 0x200000, dense.size(), 0, dense);
    walk.valueIntersect(hf, hv, fiber, dense, 0x2000, 0x200000, ma,
                        mb);
    const Cycles walk_cold = walk.finish();
    walk.valueIntersect(hf, hv, fiber, dense, 0x2000, 0x200000, ma,
                        mb);
    const Cycles walk_warm = walk.finish() - walk_cold;
    // The generic path gallops on this skew already; direct gather
    // must still beat it (no binary-search work at all).
    EXPECT_LT(gather_warm, walk_warm);
}

TEST(CpuBackend, BreakdownCategoriesPopulated)
{
    Rng rng(5);
    const auto a = sortedKeys(rng, 3000, 50000);
    const auto b = sortedKeys(rng, 3000, 50000);
    CpuBackend cpu;
    cpu.begin();
    auto h1 = cpu.streamLoad(0x1000, a.size(), 0, a);
    auto h2 = cpu.streamLoad(0x90000, b.size(), 0, b);
    cpu.setOpCount(SetOpKind::Intersect, h1, h2, a, b, noBound, 0);
    cpu.finish();
    const auto bd = cpu.breakdown();
    // Interleaved random operands: mispredicts and set-op compute
    // must both appear (the Fig. 9 shape).
    EXPECT_GT(bd[sim::CycleClass::Mispredict], 0u);
    EXPECT_GT(bd[sim::CycleClass::Intersection], 0u);
}

TEST(SparseCoreBackend, BeginResetsEngine)
{
    Rng rng(6);
    const auto a = sortedKeys(rng, 100, 10000);
    SparseCoreBackend be;
    be.begin();
    auto h = be.streamLoad(0x1000, a.size(), 0, a);
    be.streamFree(h);
    const Cycles first = be.finish();
    be.begin();
    EXPECT_EQ(be.engine().now(), 0u);
    h = be.streamLoad(0x1000, a.size(), 0, a);
    be.streamFree(h);
    EXPECT_EQ(be.finish(), first); // deterministic replay
}

TEST(SparseCoreBackend, ProducedMergeValuesStayOnChip)
{
    // A produced accumulator (value base 0) must not pay load-queue
    // time; a memory-backed one must.
    Rng rng(7);
    const auto acc = sortedKeys(rng, 2000, 100000);
    const auto row = sortedKeys(rng, 2000, 100000);

    auto run = [&](Addr acc_val_base) {
        SparseCoreBackend be;
        be.begin();
        auto ha =
            be.streamLoadKv(0x1000, 0x200000, acc.size(), 0, acc);
        auto hb =
            be.streamLoadKv(0x400000, 0x500000, row.size(), 0, row);
        auto out = be.valueMerge(ha, hb, acc, row, acc_val_base,
                                 0x500000, acc.size() + row.size(),
                                 0x600000);
        be.consumeStream(out);
        return be.finish();
    };
    EXPECT_LT(run(0), run(0x200000));
}
