/**
 * @file
 * Tests for the graph substrate: CSR construction, the symmetry-
 * breaking offset array, builders, generators and dataset registry.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.hh"
#include "graph/csr_graph.hh"
#include "graph/datasets.hh"
#include "graph/generators.hh"
#include "graph/graph_builder.hh"
#include "graph/labeled_graph.hh"

using namespace sc;
using namespace sc::graph;

TEST(GraphBuilder, DedupAndSymmetrize)
{
    CsrGraph g = buildCsr(4, {{0, 1}, {1, 0}, {0, 1}, {2, 3}});
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 0));
    EXPECT_TRUE(g.hasEdge(3, 2));
    EXPECT_FALSE(g.hasEdge(0, 2));
}

TEST(GraphBuilder, DropsSelfLoops)
{
    GraphBuilder b(3);
    b.addEdge(1, 1);
    b.addEdge(0, 2);
    CsrGraph g = std::move(b).build();
    EXPECT_EQ(g.numEdges(), 1u);
}

TEST(GraphBuilder, RejectsOutOfRange)
{
    GraphBuilder b(3);
    EXPECT_THROW(b.addEdge(0, 3), SimError);
}

TEST(CsrGraph, NeighborsSortedAndOffsets)
{
    CsrGraph g = buildCsr(5, {{2, 0}, {2, 4}, {2, 1}, {2, 3}});
    auto n2 = g.neighbors(2);
    EXPECT_TRUE(std::is_sorted(n2.begin(), n2.end()));
    EXPECT_EQ(n2.size(), 4u);
    // The CSR offset array (GFR2): first neighbor greater than 2.
    EXPECT_EQ(g.aboveOffset(2), 2u); // neighbors 0,1 are below
    auto below = g.neighborsBelow(2);
    auto above = g.neighborsAbove(2);
    EXPECT_EQ(below.size(), 2u);
    EXPECT_EQ(above.size(), 2u);
    EXPECT_EQ(below[0], 0u);
    EXPECT_EQ(above[0], 3u);
}

TEST(CsrGraph, DegreeStats)
{
    CsrGraph g = buildCsr(4, {{0, 1}, {0, 2}, {0, 3}});
    EXPECT_EQ(g.maxDegree(), 3u);
    EXPECT_DOUBLE_EQ(g.avgDegree(), 6.0 / 4.0);
}

TEST(CsrGraph, EdgeListAddresses)
{
    CsrGraph g = buildCsr(4, {{0, 1}, {1, 2}, {2, 3}});
    // Edge list addresses are contiguous in CSR order.
    EXPECT_EQ(g.edgeListAddr(1) - g.edgeListAddr(0),
              g.degree(0) * sizeof(VertexId));
    // Vertex array and edge array do not overlap.
    EXPECT_GE(g.edgeArrayBase(),
              g.vertexArrayBase() + (g.numVertices() + 1) * 8);
}

class GeneratorProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GeneratorProperty, ErdosRenyiWellFormed)
{
    const auto g =
        generateErdosRenyi(500, 2000, GetParam(), "er");
    EXPECT_EQ(g.numVertices(), 500u);
    EXPECT_GT(g.numEdges(), 1800u);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        auto n = g.neighbors(v);
        EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
        EXPECT_TRUE(std::adjacent_find(n.begin(), n.end()) == n.end());
        for (VertexId u : n) {
            EXPECT_NE(u, v); // no self loops
            EXPECT_TRUE(g.hasEdge(u, v)); // symmetric
        }
    }
}

TEST_P(GeneratorProperty, ChungLuMatchesShape)
{
    const auto g = generateChungLu(2000, 16000, 400, 2.0, GetParam());
    EXPECT_EQ(g.numVertices(), 2000u);
    // Edge count within 25% of target.
    EXPECT_GT(g.numEdges(), 12000u);
    EXPECT_LE(g.numEdges(), 16000u);
    // Heavy tail: max degree well above the average.
    EXPECT_GT(g.maxDegree(), 3 * g.avgDegree());
}

TEST_P(GeneratorProperty, RmatWellFormed)
{
    const auto g = generateRmat(1024, 4000, GetParam());
    EXPECT_EQ(g.numVertices(), 1024u);
    EXPECT_GT(g.numEdges(), 2000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty,
                         ::testing::Values(11, 22, 33, 44));

TEST(Generators, Deterministic)
{
    const auto a = generateChungLu(500, 3000, 100, 2.0, 99);
    const auto b = generateChungLu(500, 3000, 100, 2.0, 99);
    EXPECT_EQ(a.edges(), b.edges());
    EXPECT_EQ(a.offsets(), b.offsets());
}

TEST(Datasets, RegistryComplete)
{
    EXPECT_EQ(graphDatasets().size(), 10u);
    for (const auto &key : allGraphKeys()) {
        const GraphDataset &ds = graphDataset(key);
        EXPECT_EQ(ds.key, key);
    }
    EXPECT_THROW(graphDataset("Z"), SimError);
}

TEST(Datasets, SmallGraphMatchesPublishedStats)
{
    const CsrGraph &e = loadGraph("E");
    const GraphDataset &ds = graphDataset("E");
    EXPECT_EQ(e.numVertices(), ds.numVertices);
    // Within 25% of the published edge count.
    EXPECT_GT(e.numEdges(), ds.numEdges * 3 / 4);
    // Dense graph: average degree must be high (paper: 25.4).
    EXPECT_GT(e.avgDegree(), 15.0);
}

TEST(Datasets, MemoizedLoads)
{
    const CsrGraph &a = loadGraph("C");
    const CsrGraph &b = loadGraph("C");
    EXPECT_EQ(&a, &b);
}

TEST(LabeledGraph, RandomLabelsInRange)
{
    auto lg = LabeledGraph::withRandomLabels(
        buildCsr(100, {{0, 1}, {1, 2}}), 8, 42);
    EXPECT_LE(lg.numLabels(), 8u);
    for (VertexId v = 0; v < 100; ++v)
        EXPECT_LT(lg.label(v), 8u);
}

TEST(LabeledGraph, SizeMismatchRejected)
{
    EXPECT_THROW(
        LabeledGraph(buildCsr(3, {{0, 1}}), std::vector<Label>{1, 2}),
        SimError);
}
