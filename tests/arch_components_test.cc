/**
 * @file
 * Unit tests for the SparseCore architectural components: SMT (§4.1),
 * S-Cache (§4.3), scratchpad (§4.2), Stream Unit parallel comparison
 * (§4.2/Fig. 6), SVPU (§4.5) and the nested-intersection translator
 * (§4.6).
 */

#include <gtest/gtest.h>

#include "arch/nest_translator.hh"
#include "arch/scache.hh"
#include "arch/scratchpad.hh"
#include "arch/smt.hh"
#include "arch/stream_unit.hh"
#include "arch/svpu.hh"
#include "common/logging.hh"

using namespace sc;
using namespace sc::arch;

// ---------------- SMT ----------------

TEST(Smt, DefineLookupFree)
{
    Smt smt(4);
    auto e = smt.define(100);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(smt.lookup(100), e);
    EXPECT_EQ(smt.activeCount(), 1u);
    smt.decodeFree(100);
    // VD cleared, VA still set until retire (§4.1).
    EXPECT_FALSE(smt.lookup(100).has_value());
    EXPECT_EQ(smt.activeCount(), 1u);
    smt.retireFree(*e);
    EXPECT_EQ(smt.activeCount(), 0u);
}

TEST(Smt, FullTableStalls)
{
    Smt smt(2);
    EXPECT_TRUE(smt.define(1).has_value());
    EXPECT_TRUE(smt.define(2).has_value());
    EXPECT_FALSE(smt.define(3).has_value()); // stall
    EXPECT_EQ(smt.stats().get("allocStalls"), 1u);
}

TEST(Smt, RedefineKeepsEntry)
{
    Smt smt(2);
    auto e1 = smt.define(7);
    auto e2 = smt.define(7);
    EXPECT_EQ(e1, e2);
    EXPECT_EQ(smt.activeCount(), 1u);
    EXPECT_EQ(smt.stats().get("redefines"), 1u);
}

TEST(Smt, RegisterNotReusableUntilRetire)
{
    Smt smt(1);
    auto e = smt.define(1);
    smt.decodeFree(1);
    // VA still set: a new stream cannot take the register yet.
    EXPECT_FALSE(smt.define(2).has_value());
    smt.retireFree(*e);
    EXPECT_TRUE(smt.define(2).has_value());
}

TEST(Smt, FreeOfUndefinedPanics)
{
    Smt smt(2);
    EXPECT_THROW(smt.decodeFree(9), SimError);
}

TEST(Smt, SpillReleasesOneEntry)
{
    Smt smt(2);
    smt.define(1);
    smt.define(2);
    smt.spillOne();
    EXPECT_EQ(smt.activeCount(), 1u);
    EXPECT_TRUE(smt.define(3).has_value());
}

TEST(Smt, DependencyLinks)
{
    Smt smt(4);
    auto p0 = smt.define(1);
    auto p1 = smt.define(2);
    auto out = smt.define(3);
    smt.entry(*out).pred0 = *p0;
    smt.entry(*out).pred1 = *p1;
    EXPECT_EQ(smt.entry(*out).pred0, *p0);
    EXPECT_EQ(smt.entry(*out).pred1, *p1);
}

// ---------------- S-Cache ----------------

TEST(SCache, GeometryMatchesPaper)
{
    // 16 slots x 64 keys x 4 B = 4 KB (§4.3).
    SCache scache(16, 64, 64);
    EXPECT_EQ(scache.totalSizeBytes(), 4096u);
    EXPECT_EQ(scache.subSlotKeys(), 32u);
}

TEST(SCache, AllocateFetchesFirstSubSlot)
{
    SCache scache(16, 64, 64);
    sim::MemHierarchy mem;
    // 32 keys = 128 B = 2 lines; both fetched via the L2 path.
    const Cycles latency = scache.allocate(0, 0x10000, 100, mem);
    EXPECT_GT(latency, 0u);
    EXPECT_EQ(scache.stats().get("refillLines"), 2u);
    EXPECT_TRUE(scache.slot(0).startBit);
    EXPECT_FALSE(mem.l1().contains(0x10000)); // bypasses L1
    EXPECT_TRUE(mem.l2().contains(0x10000));
}

TEST(SCache, ShortStreamFetchesFewerLines)
{
    SCache scache(16, 64, 64);
    sim::MemHierarchy mem;
    scache.allocate(1, 0x20000, 8, mem); // 8 keys = 32 B = 1 line
    EXPECT_EQ(scache.stats().get("refillLines"), 1u);
}

TEST(SCache, ProducedStreamOverflowClearsStartBit)
{
    SCache scache(16, 64, 64);
    sim::MemHierarchy mem;
    scache.allocateProduced(2, 0);
    const auto lines = scache.writebackProduced(2, 200, mem);
    EXPECT_GT(lines, 0u);
    EXPECT_FALSE(scache.slot(2).startBit);
    EXPECT_EQ(scache.slot(2).residentFrom, 200u - 64u);

    // A short produced stream keeps its start bit.
    scache.allocateProduced(3, 0);
    EXPECT_EQ(scache.writebackProduced(3, 40, mem), 0u);
    EXPECT_TRUE(scache.slot(3).startBit);
}

TEST(SCache, ReleaseClearsSlot)
{
    SCache scache(4, 64, 64);
    sim::MemHierarchy mem;
    scache.allocate(0, 0x30000, 64, mem);
    scache.release(0);
    EXPECT_FALSE(scache.slot(0).valid);
}

// ---------------- Scratchpad ----------------

TEST(Scratchpad, HitAfterInsert)
{
    Scratchpad sp(16 * 1024);
    EXPECT_FALSE(sp.lookup(0x1000));
    sp.insert(0x1000, 100);
    EXPECT_TRUE(sp.lookup(0x1000));
    EXPECT_EQ(sp.usedKeys(), 100u);
}

TEST(Scratchpad, LruEviction)
{
    Scratchpad sp(16 * 1024); // 4096 keys
    sp.insert(0x1000, 2000);
    sp.insert(0x2000, 2000);
    sp.insert(0x3000, 2000); // evicts 0x1000
    EXPECT_FALSE(sp.lookup(0x1000));
    EXPECT_TRUE(sp.lookup(0x2000));
    EXPECT_TRUE(sp.lookup(0x3000));
    EXPECT_LE(sp.usedKeys(), sp.capacityKeys());
}

TEST(Scratchpad, OversizedStreamNotInserted)
{
    Scratchpad sp(1024); // 256 keys
    sp.insert(0x1000, 1000);
    EXPECT_FALSE(sp.lookup(0x1000));
}

TEST(Scratchpad, LookupRefreshesLru)
{
    Scratchpad sp(16 * 1024);
    sp.insert(0x1000, 2000);
    sp.insert(0x2000, 2000);
    EXPECT_TRUE(sp.lookup(0x1000)); // refresh
    sp.insert(0x3000, 2000);        // evicts 0x2000 instead
    EXPECT_TRUE(sp.lookup(0x1000));
    EXPECT_FALSE(sp.lookup(0x2000));
}

// ---------------- Stream Unit (Fig. 6) ----------------

TEST(StreamUnit, FigureSixExample)
{
    // Fig. 6: A = [0, 2, 3, 9], B = [3, 4, 7, 8] finishes the match
    // of key 3 within three cycles of parallel comparison.
    const std::vector<Key> a = {0, 2, 3, 9};
    const std::vector<Key> b = {3, 4, 7, 8};
    const Cycles cycles = streams::suCycles(
        a, b, streams::SetOpKind::Intersect, noBound, 16);
    EXPECT_LE(cycles, 3u);
    EXPECT_GE(cycles, 2u);
}

TEST(StreamUnit, WindowSkipsAheadVsScalar)
{
    // Interleaved-but-disjoint streams of 160 elements: the scalar
    // walk needs ~320 steps; a 16-wide window needs far fewer when
    // runs are long.
    std::vector<Key> a, b;
    for (Key i = 0; i < 160; ++i) {
        a.push_back(i);               // 0..159
        b.push_back(1000 + i);        // no overlap: one big skip
    }
    const Cycles wide = streams::suCycles(
        a, b, streams::SetOpKind::Intersect, noBound, 16);
    const Cycles scalar = streams::suCycles(
        a, b, streams::SetOpKind::Intersect, noBound, 1);
    EXPECT_LT(wide * 4, scalar);
}

TEST(StreamUnit, OccupancyTracksBusyCycles)
{
    StreamUnit su(0, 16, 4);
    su.occupy(10, 30);
    su.occupy(30, 45);
    EXPECT_EQ(su.freeAt(), 45u);
    EXPECT_EQ(su.busyCycles(), 35u);
    EXPECT_EQ(su.opsExecuted(), 2u);
    EXPECT_THROW(su.occupy(40, 50), SimError); // overlapping
}

TEST(StreamUnit, OpCyclesIncludesPipelineLatency)
{
    StreamUnit su(0, 16, 4);
    const std::vector<Key> a = {1};
    const std::vector<Key> b = {1};
    EXPECT_EQ(su.opCycles(a, b, streams::SetOpKind::Intersect), 5u);
}

// ---------------- SVPU ----------------

TEST(Svpu, OverlapsLoadsUpToMlp)
{
    sim::MemHierarchy mem;
    Svpu svpu(8);
    std::vector<Addr> a(64), b(64);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = 0x100000 + i * 8;
        b[i] = 0x200000 + i * 8;
    }
    const SvpuCost cost = svpu.process(a, b, mem);
    EXPECT_EQ(cost.loads, 128u);
    EXPECT_EQ(cost.flops, 64u);
    // With MLP 8, the drain time is far below the serial latency sum.
    Svpu serial(1);
    sim::MemHierarchy mem2;
    const SvpuCost serial_cost = serial.process(a, b, mem2);
    EXPECT_LT(cost.cycles, serial_cost.cycles);
}

TEST(Svpu, MismatchedListsPanic)
{
    sim::MemHierarchy mem;
    Svpu svpu(8);
    EXPECT_THROW(svpu.process({0x10}, {}, mem), SimError);
}

// ---------------- Nested Intersection Translator ----------------

TEST(NestTranslator, ReadyTimesMonotonic)
{
    NestTranslator tr(NestTranslatorParams{16, 1, 8});
    sim::MemHierarchy mem;
    std::vector<Addr> info(40);
    for (std::size_t i = 0; i < info.size(); ++i)
        info[i] = 0x500000 + i * 8;
    const auto ready = tr.translate(100, info, mem);
    ASSERT_EQ(ready.size(), info.size());
    for (std::size_t i = 1; i < ready.size(); ++i)
        EXPECT_GE(ready[i], ready[i - 1]);
    EXPECT_GE(ready.front(), 100u);
}

TEST(NestTranslator, BufferLimitsInFlight)
{
    // A tiny 2-entry buffer forces later elements to wait for
    // earlier drains, spreading ready times out.
    sim::MemHierarchy mem_small, mem_big;
    NestTranslator small(NestTranslatorParams{2, 1, 8});
    NestTranslator big(NestTranslatorParams{64, 1, 8});
    std::vector<Addr> info(32);
    for (std::size_t i = 0; i < info.size(); ++i)
        info[i] = 0x600000 + i * 8;
    const auto r_small = small.translate(0, info, mem_small);
    const auto r_big = big.translate(0, info, mem_big);
    EXPECT_GE(r_small.back(), r_big.back());
}
