/**
 * @file
 * Tests for the common infrastructure: logging, stats, histograms,
 * RNG determinism, and table formatting.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace sc;

TEST(Logging, PanicAndFatalThrow)
{
    EXPECT_THROW(panic("broken %d", 7), SimError);
    EXPECT_THROW(fatal("bad input %s", "x"), SimError);
    try {
        panic("value %d", 42);
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("value 42"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("panic"),
                  std::string::npos);
    }
}

TEST(Logging, Strprintf)
{
    EXPECT_EQ(strprintf("a=%d b=%s", 1, "two"), "a=1 b=two");
    EXPECT_EQ(strprintf("%x", 255u), "ff");
}

TEST(Rng, DeterministicSequences)
{
    Rng a(123), b(123), c(124);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(123);
    for (int i = 0; i < 100; ++i)
        differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        EXPECT_LT(rng.below(10), 10u);
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(9);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Stats, CountersAndDump)
{
    StatSet stats("unit");
    ++stats.counter("a");
    stats.counter("b") += 41;
    ++stats.counter("b");
    EXPECT_EQ(stats.get("a"), 1u);
    EXPECT_EQ(stats.get("b"), 42u);
    EXPECT_EQ(stats.get("missing"), 0u);
    const std::string text = stats.dump();
    EXPECT_NE(text.find("unit.b = 42"), std::string::npos);
    stats.reset();
    EXPECT_EQ(stats.get("b"), 0u);
}

TEST(Histogram, SamplingAndPercentiles)
{
    Histogram h(1, 100);
    for (std::uint64_t v = 0; v < 100; ++v)
        h.sample(v);
    EXPECT_EQ(h.samples(), 100u);
    EXPECT_NEAR(h.mean(), 49.5, 0.01);
    EXPECT_NEAR(h.percentile(0.5), 50u, 1);
    EXPECT_EQ(h.maxValue(), 99u);
    EXPECT_NEAR(h.cdfAt(49), 0.5, 0.01);
}

TEST(Histogram, OverflowBucket)
{
    Histogram h(1, 10);
    h.sample(1000); // lands in the overflow bucket
    EXPECT_EQ(h.samples(), 1u);
    EXPECT_EQ(h.maxValue(), 1000u);
    EXPECT_DOUBLE_EQ(h.cdfAt(5), 0.0);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h(10, 20);
    h.sample(15, 3);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 15.0);
}

TEST(Table, AlignmentAndCsv)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "2"});
    const std::string text = t.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("longer"), std::string::npos);
    EXPECT_EQ(t.csv(), "name,value\nx,1\nlonger,2\n");
}

TEST(Table, ShortRowsPadded)
{
    Table t({"a", "b", "c"});
    t.addRow({"1"});
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_NE(t.csv().find("1,,"), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::speedup(13.5, 1), "13.5x");
}

TEST(Geomean, KnownValues)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-9);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-9);
    EXPECT_THROW(geomean({}), SimError);
    EXPECT_THROW(geomean({1.0, -1.0}), SimError);
}
