/**
 * @file
 * The "compiler output is verifier-clean" pin: every event stream the
 * GPM planner, the FSM miner and the tensor kernels emit — captured
 * through a TraceRecorder — must pass the stream-lifetime verifier
 * with zero diagnostics, and the committed golden trace must stay
 * clean too. A planner or kernel change that starts leaking streams,
 * double-freeing or misusing (key,value) ancestry fails here with the
 * rule-tagged diagnostic, not as a mystery in a timing model.
 */

#include <gtest/gtest.h>

#include "analysis/trace_check.hh"
#include "gpm/apps.hh"
#include "gpm/executor.hh"
#include "gpm/fsm.hh"
#include "kernels/spmspm.hh"
#include "kernels/ttm.hh"
#include "kernels/ttv.hh"
#include "tensor/tensor_gen.hh"
#include "test_util.hh"
#include "trace/recorder.hh"

using namespace sc;

namespace {

void
expectClean(const trace::Trace &tr, const std::string &label)
{
    const auto report = analysis::verifyTrace(tr);
    EXPECT_TRUE(report.clean())
        << label << ":\n"
        << report.format();
}

} // namespace

TEST(VerifySweep, AllGpmAppEmissionsAreClean)
{
    const auto g = test::randomTestGraph(100, 700, 5);
    for (const gpm::GpmApp app : gpm::allGpmApps()) {
        trace::TraceRecorder rec;
        gpm::PlanExecutor executor(g, rec);
        executor.runMany(gpm::gpmAppPlans(app));
        expectClean(rec.takeTrace(),
                    std::string("gpm ") + gpm::gpmAppName(app));
    }
}

TEST(VerifySweep, FsmEmissionIsClean)
{
    auto base = test::randomTestGraph(60, 350, 13);
    std::vector<graph::Label> labels(base.numVertices());
    for (VertexId v = 0; v < base.numVertices(); ++v)
        labels[v] = static_cast<graph::Label>(v % 3);
    const graph::LabeledGraph lg(std::move(base), labels);

    trace::TraceRecorder rec;
    gpm::runFsm(lg, rec, 2);
    expectClean(rec.takeTrace(), "fsm");
}

TEST(VerifySweep, TensorKernelEmissionsAreClean)
{
    const auto a = tensor::generateMatrix(
        30, 40, 220, tensor::MatrixStructure::Uniform, 31, "A");
    const auto b = tensor::generateMatrix(
        40, 25, 200, tensor::MatrixStructure::Uniform, 32, "B");
    for (const auto algorithm : {kernels::SpmspmAlgorithm::Inner,
                                 kernels::SpmspmAlgorithm::Outer,
                                 kernels::SpmspmAlgorithm::Gustavson}) {
        trace::TraceRecorder rec;
        kernels::runSpmspm(a, b, algorithm, rec);
        expectClean(rec.takeTrace(), "spmspm");
    }

    const auto t = tensor::generateTensor(15, 12, 24, 300, 33, "T");
    const std::vector<Value> vec(24, 0.5);
    {
        trace::TraceRecorder rec;
        kernels::runTtv(t, vec, rec);
        expectClean(rec.takeTrace(), "ttv");
    }
    const auto m = tensor::generateMatrix(
        10, 24, 110, tensor::MatrixStructure::Uniform, 34, "M");
    {
        trace::TraceRecorder rec;
        kernels::runTtm(t, m, rec);
        expectClean(rec.takeTrace(), "ttm");
    }
}

TEST(VerifySweep, CommittedGoldenTraceIsClean)
{
    const auto tr = trace::Trace::loadFile(
        SPARSECORE_TEST_DATA_DIR "/golden_trace.bin");
    expectClean(tr, "golden trace");
}
