/**
 * @file
 * Tests for the plan generator: level structure, bounds, incremental
 * detection, nested applicability, prior-exclusion analysis, and the
 * textual plan description.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "gpm/planner.hh"

using namespace sc;
using namespace sc::gpm;

TEST(Planner, TrianglePlanShape)
{
    const MiningPlan plan =
        buildPlan(Pattern::triangle(), identityOrder(3), true, true);
    ASSERT_EQ(plan.levels.size(), 2u);
    // v1: adjacent to v0, bounded by v0.
    EXPECT_EQ(plan.levels[0].connect, std::vector<unsigned>{0});
    EXPECT_EQ(plan.levels[0].bounds, std::vector<unsigned>{0});
    // v2: adjacent to both, bounded (at least) by v1, incremental.
    EXPECT_EQ(plan.levels[1].connect.size(), 2u);
    EXPECT_TRUE(plan.levels[1].incremental);
    EXPECT_TRUE(plan.useNested);
    EXPECT_TRUE(plan.levels[1].priorExclude.empty());
}

TEST(Planner, CliquePlansAreIncrementalChains)
{
    for (unsigned k : {4u, 5u}) {
        const MiningPlan plan = buildPlan(Pattern::clique(k),
                                          identityOrder(k), true, true);
        ASSERT_EQ(plan.levels.size(), k - 1);
        for (unsigned l = 1; l < k - 1; ++l)
            EXPECT_TRUE(plan.levels[l].incremental) << "level " << l;
        EXPECT_TRUE(plan.useNested);
        for (const auto &level : plan.levels)
            EXPECT_TRUE(level.priorExclude.empty());
    }
}

TEST(Planner, TailedTrianglePlanMatchesFigureTwo)
{
    const MiningPlan plan = buildPlan(Pattern::tailedTriangle(),
                                      identityOrder(4), true, false);
    ASSERT_EQ(plan.levels.size(), 3u);
    // Level 2 (the paper's v2): intersect N(v0), N(v1), bound v0.
    EXPECT_EQ(plan.levels[1].connect.size(), 2u);
    EXPECT_EQ(plan.levels[1].bounds, std::vector<unsigned>{0});
    EXPECT_TRUE(plan.levels[1].incremental);
    // Level 3 (the tail): attached to v1 only, subtracting the two
    // triangle vertices' neighborhoods.
    EXPECT_EQ(plan.levels[2].connect, std::vector<unsigned>{1});
    EXPECT_EQ(plan.levels[2].disconnect,
              (std::vector<unsigned>{0, 2}));
    EXPECT_TRUE(plan.levels[2].priorExclude.empty());
}

TEST(Planner, ChainPlanIsVertexInduced)
{
    const MiningPlan plan = buildPlan(Pattern::threeChain(),
                                      identityOrder(3), true, false);
    EXPECT_EQ(plan.levels[1].disconnect, std::vector<unsigned>{0});
    // Edge-induced drops the disconnect set.
    const MiningPlan edge = buildPlan(Pattern::threeChain(),
                                      identityOrder(3), false, false);
    EXPECT_TRUE(edge.levels[1].disconnect.empty());
}

TEST(Planner, FourPathNeedsPriorExclusion)
{
    // Edge-induced 4-path: the second midpoint's candidates can
    // contain the first midpoint; the planner must catch it.
    const MiningPlan plan = buildPlan(Pattern::path(4),
                                      identityOrder(4), false, false);
    ASSERT_EQ(plan.levels.size(), 3u);
    EXPECT_EQ(plan.levels[2].priorExclude, std::vector<unsigned>{1});
}

TEST(Planner, NestedRefusedWhenShapeWrong)
{
    // The chain's final level is not an incremental intersection, so
    // nested lowering must be refused.
    setVerbose(false);
    const MiningPlan plan = buildPlan(Pattern::threeChain(),
                                      identityOrder(3), true, true);
    EXPECT_FALSE(plan.useNested);
}

TEST(Planner, RejectsDisconnectedOrder)
{
    // 4-path with order 0,3,1,2: position 1 (vertex 3) has no
    // earlier neighbor.
    EXPECT_THROW(
        buildPlan(Pattern::path(4), {0, 3, 1, 2}, true, false),
        SimError);
}

TEST(Planner, RejectsOrderAgainstRestrictions)
{
    // Triangle with reversed order would put the restriction's later
    // side first.
    EXPECT_THROW(
        buildPlan(Pattern::triangle(), {2, 1, 0}, true, false),
        SimError);
}

TEST(Planner, DescribeMentionsStructure)
{
    const MiningPlan plan = buildPlan(Pattern::tailedTriangle(),
                                      identityOrder(4), true, false);
    const std::string text = plan.describe();
    EXPECT_NE(text.find("N(v0)"), std::string::npos);
    EXPECT_NE(text.find("- N("), std::string::npos);
    EXPECT_NE(text.find("count += |C3|"), std::string::npos);

    const MiningPlan nested =
        buildPlan(Pattern::clique(4), identityOrder(4), true, true);
    EXPECT_NE(nested.describe().find("S_NESTINTER"),
              std::string::npos);
}
