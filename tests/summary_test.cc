/**
 * @file
 * Tests for the quantitative analyses (analysis/summary): per-point
 * pressure profiles, the static [lower, upper] cost interval that
 * must bracket dynamically simulated cycles across the GPM / FSM /
 * tensor sweeps and arch configs, trace-vs-SCBC summary parity,
 * ArchConfig-derived verifier capacity with the error-vs-warning
 * severity boundary, deterministic (pc, sid, rule) diagnostic
 * ordering behind the byte-stable --json emitters, chunked
 * mineParallel*-style traces, and rejection of corrupt or truncated
 * SCBC images.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/summary.hh"
#include "analysis/trace_check.hh"
#include "analysis/verifier.hh"
#include "analysis/verifying_backend.hh"
#include "api/parallel.hh"
#include "arch/config.hh"
#include "backend/functional_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "gpm/apps.hh"
#include "gpm/executor.hh"
#include "gpm/fsm.hh"
#include "isa/assembler.hh"
#include "kernels/spmspm.hh"
#include "kernels/ttm.hh"
#include "kernels/ttv.hh"
#include "tensor/tensor_gen.hh"
#include "test_util.hh"
#include "trace/compile.hh"
#include "trace/recorder.hh"
#include "trace/replay.hh"

using namespace sc;
using analysis::Rule;

namespace {

/** The arch ladder the bracket property runs against: default plus
 *  points that stress each cost-model resource (SU count, window,
 *  stream bandwidth, lowered nested intersection). */
std::vector<arch::SparseCoreConfig>
sweepConfigs()
{
    std::vector<arch::SparseCoreConfig> configs(5);
    configs[1].numSus = 1;
    configs[2].numSus = 8;
    configs[2].suWindow = 8;
    configs[3].aggregateBandwidth = 8;
    configs[3].nestedIntersection = false;
    configs[4].aggregateBandwidth = 64;
    configs[4].suWindow = 64;
    return configs;
}

/** The bracket property plus trace/SCBC parity for one trace: at
 *  every config, static bounds must contain the dynamic cycles and
 *  the bytecode-side summary must match the trace-side one. */
void
expectBrackets(const trace::Trace &tr, const std::string &label)
{
    const trace::BytecodeProgram bc = trace::compileTrace(tr);
    for (const arch::SparseCoreConfig &config : sweepConfigs()) {
        const analysis::ProgramSummary summary =
            analysis::summarizeTrace(tr, config);
        ASSERT_TRUE(summary.cost.valid) << label;
        EXPECT_LE(summary.cost.lower, summary.cost.upper) << label;

        backend::SparseCoreBackend be(config);
        const Cycles cycles =
            trace::replay(tr, be, /*verify=*/false).cycles;
        EXPECT_TRUE(summary.cost.contains(cycles))
            << label << ": [" << summary.cost.lower << ", "
            << summary.cost.upper << "] misses " << cycles
            << " cycles (sus=" << config.numSus
            << " window=" << config.suWindow
            << " bw=" << config.aggregateBandwidth
            << " nested=" << config.nestedIntersection << ")";

        const analysis::ProgramSummary from_bc =
            analysis::summarizeBytecode(bc, config);
        EXPECT_EQ(analysis::jsonValue(from_bc).dump(),
                  analysis::jsonValue(summary).dump())
            << label << ": SCBC summary diverged from the trace's";
    }
}

trace::Trace
record(const std::function<void(trace::TraceRecorder &)> &fn)
{
    trace::TraceRecorder rec;
    rec.begin();
    fn(rec);
    return rec.takeTrace();
}

const std::vector<Key> someKeys{1, 2, 3};

std::string
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

// ---------------- the bracket property ----------------

TEST(CostBounds, GpmAppSweepBracketsDynamicCycles)
{
    const auto g = test::randomTestGraph(100, 700, 5);
    for (const gpm::GpmApp app : gpm::allGpmApps()) {
        trace::TraceRecorder rec;
        gpm::PlanExecutor executor(g, rec);
        executor.runMany(gpm::gpmAppPlans(app));
        expectBrackets(rec.takeTrace(),
                       std::string("gpm ") + gpm::gpmAppName(app));
    }
}

TEST(CostBounds, FsmSweepBracketsDynamicCycles)
{
    auto base = test::randomTestGraph(60, 350, 13);
    std::vector<graph::Label> labels(base.numVertices());
    for (VertexId v = 0; v < base.numVertices(); ++v)
        labels[v] = static_cast<graph::Label>(v % 3);
    const graph::LabeledGraph lg(std::move(base), labels);

    trace::TraceRecorder rec;
    gpm::runFsm(lg, rec, 2);
    expectBrackets(rec.takeTrace(), "fsm");
}

TEST(CostBounds, TensorKernelSweepBracketsDynamicCycles)
{
    const auto a = tensor::generateMatrix(
        30, 40, 220, tensor::MatrixStructure::Uniform, 31, "A");
    const auto b = tensor::generateMatrix(
        40, 25, 200, tensor::MatrixStructure::Uniform, 32, "B");
    for (const auto algorithm : {kernels::SpmspmAlgorithm::Inner,
                                 kernels::SpmspmAlgorithm::Outer,
                                 kernels::SpmspmAlgorithm::Gustavson}) {
        trace::TraceRecorder rec;
        kernels::runSpmspm(a, b, algorithm, rec);
        expectBrackets(rec.takeTrace(), "spmspm");
    }

    const auto t = tensor::generateTensor(15, 12, 24, 300, 33, "T");
    const std::vector<Value> vec(24, 0.5);
    {
        trace::TraceRecorder rec;
        kernels::runTtv(t, vec, rec);
        expectBrackets(rec.takeTrace(), "ttv");
    }
    const auto m = tensor::generateMatrix(
        10, 24, 110, tensor::MatrixStructure::Uniform, 34, "M");
    {
        trace::TraceRecorder rec;
        kernels::runTtm(t, m, rec);
        expectBrackets(rec.takeTrace(), "ttm");
    }
}

TEST(CostBounds, CommittedGoldenTraceBrackets)
{
    const auto tr = trace::Trace::loadFile(
        SPARSECORE_TEST_DATA_DIR "/golden_trace.bin");
    expectBrackets(tr, "golden trace");
}

TEST(CostBounds, ChunkedParallelTracesBracketAndVerifyClean)
{
    // The mineParallel* split: chunk m of M covers roots
    // { (m + i*M) * stride }. Every chunk's trace must be
    // verifier-clean, replay through the VerifyingBackend without a
    // throw, and satisfy the bracket property; the chunk functional
    // results must sum to the parallel miner's.
    const auto g = test::randomTestGraph(80, 500, 7);
    const gpm::GpmApp app = gpm::GpmApp::TC;
    const arch::SparseCoreConfig config;
    constexpr unsigned kChunks = 4;

    api::HostOptions host;
    host.chunksPerCore = 2;
    host.artifactCache = false;
    const auto parallel =
        api::mineParallelSparseCore(app, g, 2, config, 1, host);

    std::uint64_t chunk_total = 0;
    for (unsigned chunk = 0; chunk < kChunks; ++chunk) {
        trace::TraceRecorder rec;
        gpm::PlanExecutor executor(g, rec);
        executor.setRootRange(chunk, kChunks);
        chunk_total +=
            executor.runMany(gpm::gpmAppPlans(app)).embeddings;
        const trace::Trace tr = rec.takeTrace();

        const auto report = analysis::verifyTrace(tr);
        EXPECT_TRUE(report.clean())
            << "chunk " << chunk << ":\n"
            << report.format();

        backend::FunctionalBackend inner;
        analysis::VerifyingBackend vbe(inner);
        EXPECT_NO_THROW(
            trace::replay(tr, vbe, /*verify=*/false,
                          trace::ReplayMode::Event))
            << "chunk " << chunk;

        expectBrackets(tr, "chunk " + std::to_string(chunk));
    }
    EXPECT_EQ(chunk_total, parallel.embeddings);
}

// ---------------- pressure profiles ----------------

namespace {

const char *const kThreeStreamProgram = R"(
LI r1, 4096
LI r2, 8
LI r3, 1
S_READ r1, r2, r3, r0
LI r6, 2
S_READ r1, r2, r6, r0
LI r7, 3
S_INTER r3, r6, r7, r0
S_FREE r3
S_FREE r6
S_FREE r7
HALT
)";

} // namespace

TEST(Pressure, ProgramProfileIsExactOnStraightLine)
{
    const isa::Program program = isa::assemble(kThreeStreamProgram);
    const analysis::ProgramSummary summary =
        analysis::summarizeProgram(program);

    EXPECT_TRUE(summary.pressureExact);
    EXPECT_EQ(summary.defines, 3u);
    EXPECT_EQ(summary.frees, 3u);
    EXPECT_EQ(summary.maxPressure, 3u);
    EXPECT_EQ(summary.maxPressurePc, 7u); // the S_INTER define
    ASSERT_EQ(summary.profile.size(), program.size());
    EXPECT_EQ(summary.points, program.size());
    // Live counts step 1 -> 2 -> 3 at the defines, back to 0 at the
    // frees; the profile point at a pc is the count *after* it.
    EXPECT_EQ(summary.profile[3].live, 1u);
    EXPECT_EQ(summary.profile[5].live, 2u);
    EXPECT_EQ(summary.profile[7].live, 3u);
    EXPECT_EQ(summary.profile[10].live, 0u);
    // ISA programs have no event stream to charge, so no cost bounds.
    EXPECT_FALSE(summary.cost.valid);
}

TEST(Pressure, TraceWatermarkProfileMatchesChecker)
{
    const auto tr = record([&](trace::TraceRecorder &rec) {
        const auto a = rec.streamLoad(0x1000, 3, 0, someKeys);
        const auto b = rec.streamLoad(0x2000, 3, 0, someKeys);
        const auto c =
            rec.setOp(streams::SetOpKind::Intersect, a, b, someKeys,
                      someKeys, noBound, someKeys, 0x3000);
        rec.streamFree(a);
        rec.streamFree(b);
        rec.streamFree(c);
    });
    const arch::SparseCoreConfig config;
    const analysis::ProgramSummary summary =
        analysis::summarizeTrace(tr, config);
    EXPECT_TRUE(summary.pressureExact);
    EXPECT_EQ(summary.defines, 3u);
    EXPECT_EQ(summary.frees, 3u);
    EXPECT_EQ(summary.maxPressure, 3u);
    EXPECT_EQ(summary.maxPressurePc, 2u); // the setOp define
    // Trace profiles are watermark envelopes: one point per running-
    // max increase, not one per event.
    ASSERT_EQ(summary.profile.size(), 3u);
    EXPECT_EQ(summary.profile.back().live, 3u);
}

// ---------------- ArchConfig-derived capacity ----------------

TEST(ArchCapacity, OverflowCapacityAndSeverityBoundary)
{
    arch::SparseCoreConfig small;
    small.numStreamRegs = 2;

    // ISA side: register-file overflow over the *config's* capacity
    // is an error (the program targets an architectural register
    // file that size).
    const analysis::VerifyOptions options =
        analysis::VerifyOptions::forArch(small);
    EXPECT_EQ(options.maxLiveStreams, 2u);
    const auto report = analysis::verify(
        isa::assemble(kThreeStreamProgram), options);
    EXPECT_TRUE(report.hasErrors()) << report.format();
    bool saw_overflow = false;
    for (const auto &d : report.diagnostics)
        if (d.rule == Rule::StreamOverflow) {
            saw_overflow = true;
            EXPECT_EQ(d.severity, analysis::Severity::Error);
        }
    EXPECT_TRUE(saw_overflow) << report.format();

    // At exactly the capacity there is no diagnostic: the boundary
    // sits between live == capacity (fine) and live > capacity.
    arch::SparseCoreConfig exact = small;
    exact.numStreamRegs = 3;
    EXPECT_TRUE(analysis::verify(
                    isa::assemble(kThreeStreamProgram),
                    analysis::VerifyOptions::forArch(exact))
                    .clean());

    // Trace side: the SMT virtualizes overflow by spilling (§4.1),
    // so the same shape downgrades to a warning — never an error.
    const auto checker_options =
        analysis::StreamLifetimeChecker::Options::forArch(small);
    EXPECT_EQ(checker_options.maxLiveStreams, 2u);
    const auto tr = record([&](trace::TraceRecorder &rec) {
        const auto a = rec.streamLoad(0x1000, 3, 0, someKeys);
        const auto b = rec.streamLoad(0x2000, 3, 0, someKeys);
        const auto c = rec.streamLoad(0x3000, 3, 0, someKeys);
        rec.streamFree(a);
        rec.streamFree(b);
        rec.streamFree(c);
    });
    const auto trace_report =
        analysis::verifyTrace(tr, checker_options);
    EXPECT_FALSE(trace_report.hasErrors()) << trace_report.format();
    EXPECT_EQ(trace_report.warningCount(), 1u)
        << trace_report.format();
}

// ---------------- deterministic ordering + emitters ----------------

TEST(Emitters, DiagnosticsSortedByPcSidRuleAndByteStable)
{
    // Two leaked streams (both reported at the final event) plus an
    // earlier double free: ordering must be (pc, sid, rule) no matter
    // what order the analysis discovered them in.
    const auto tr = record([&](trace::TraceRecorder &rec) {
        const auto a = rec.streamLoad(0x1000, 3, 0, someKeys);
        rec.streamLoad(0x2000, 3, 0, someKeys);
        rec.streamLoad(0x3000, 3, 0, someKeys);
        rec.streamFree(a);
        rec.streamFree(a);
    });
    const auto report = analysis::verifyTrace(tr);
    ASSERT_GE(report.diagnostics.size(), 3u) << report.format();
    for (std::size_t i = 1; i < report.diagnostics.size(); ++i) {
        const auto &p = report.diagnostics[i - 1];
        const auto &d = report.diagnostics[i];
        const bool ordered =
            p.pc != d.pc
                ? p.pc < d.pc
                : (p.sid != d.sid
                       ? p.sid < d.sid
                       : static_cast<unsigned>(p.rule) <=
                             static_cast<unsigned>(d.rule));
        EXPECT_TRUE(ordered)
            << "diagnostics out of (pc, sid, rule) order:\n"
            << report.format();
    }

    // Byte stability: re-running the analysis and re-emitting must
    // reproduce the dump exactly (what the check.sh golden diff and
    // the --json consumers rely on).
    const auto again = analysis::verifyTrace(tr);
    EXPECT_EQ(analysis::jsonValue(report).dump(),
              analysis::jsonValue(again).dump());
    const JsonValue value = analysis::jsonValue(report);
    EXPECT_EQ(value.dump(), value.dump());
}

TEST(Emitters, SummaryJsonCarriesProfileAndBounds)
{
    const auto tr = record([&](trace::TraceRecorder &rec) {
        const auto a = rec.streamLoad(0x1000, 3, 0, someKeys);
        rec.streamFree(a);
    });
    const arch::SparseCoreConfig config;
    const analysis::ProgramSummary summary =
        analysis::summarizeTrace(tr, config);
    const std::string dumped = analysis::jsonValue(summary).dump();
    EXPECT_NE(dumped.find("\"max_pressure\":1"), std::string::npos)
        << dumped;
    EXPECT_NE(dumped.find("\"profile\":[{\"pc\":0,\"live\":1}]"),
              std::string::npos)
        << dumped;
    EXPECT_NE(dumped.find("\"cost\":{\"valid\":true"),
              std::string::npos)
        << dumped;
}

// ---------------- corrupt / truncated SCBC images ----------------

TEST(ScbcRejection, TruncatedAndCorruptImagesThrow)
{
    const std::string bytes = readBytes(
        SPARSECORE_TEST_DATA_DIR "/golden_trace.scbc");
    ASSERT_GT(bytes.size(), 16u);

    // Truncation: the reader runs out of bytes.
    EXPECT_THROW(trace::BytecodeProgram::deserialize(
                     bytes.substr(0, bytes.size() / 2)),
                 SimError);
    EXPECT_THROW(
        trace::BytecodeProgram::deserialize(bytes.substr(0, 10)),
        SimError);

    // Wrong magic.
    std::string magic = bytes;
    magic[0] = 'X';
    EXPECT_THROW(trace::BytecodeProgram::deserialize(magic),
                 SimError);

    // Trailing garbage after a well-formed image.
    EXPECT_THROW(trace::BytecodeProgram::deserialize(bytes + "xx"),
                 SimError);

    // The committed image itself still round-trips.
    EXPECT_NO_THROW(trace::BytecodeProgram::deserialize(bytes));
}

TEST(ScbcRejection, BytecodeAnalysesFlagBadLifetimes)
{
    // A structurally valid SCBC image whose event order violates the
    // lifetime rules: deserialization accepts it (spans and handles
    // are in range), but the bytecode-side analyses must still flag
    // it and the summary must stay total.
    const auto tr = record([&](trace::TraceRecorder &rec) {
        const auto a = rec.streamLoad(0x1000, 3, 0, someKeys);
        rec.streamFree(a);
        rec.streamFree(a);
    });
    const trace::BytecodeProgram bc = trace::compileTrace(tr);
    const std::string wire = bc.serialize();
    const trace::BytecodeProgram reloaded =
        trace::BytecodeProgram::deserialize(wire);

    const auto report = analysis::verifyBytecode(reloaded);
    ASSERT_FALSE(report.clean());
    EXPECT_EQ(report.diagnostics[0].rule, Rule::DoubleFree);

    const arch::SparseCoreConfig config;
    const analysis::ProgramSummary summary =
        analysis::summarizeBytecode(reloaded, config);
    EXPECT_EQ(summary.defines, 1u);
    EXPECT_EQ(summary.frees, 2u);
    EXPECT_TRUE(summary.cost.valid);
}
