/**
 * @file
 * Integration tests of the public API facade: GPM and tensor
 * comparisons end to end, configuration plumbing, report formatting,
 * and the paper's headline qualitative claims at small scale.
 */

#include <gtest/gtest.h>

#include "api/machine.hh"
#include "graph/generators.hh"
#include "tensor/tensor_gen.hh"
#include "test_util.hh"

using namespace sc;
using namespace sc::api;

namespace {

graph::CsrGraph
denseGraph()
{
    return graph::generateChungLu(800, 10000, 200, 2.0, 5, "dense");
}

RunOptions
withRootStride(unsigned stride)
{
    RunOptions options;
    options.rootStride = stride;
    return options;
}

} // namespace

TEST(Machine, GpmComparisonAgreesAndWins)
{
    Machine machine;
    const auto g = denseGraph();
    const Comparison cmp =
        machine.compare(RunRequest::gpm(gpm::GpmApp::T, g));
    EXPECT_GT(cmp.functionalResult, 0u);
    EXPECT_GT(cmp.speedup(), 1.0);
    EXPECT_EQ(cmp.baseline.substrate, "cpu");
    EXPECT_EQ(cmp.accelerated.substrate, "sparsecore");
}

TEST(Machine, RunMatchesCompareLegs)
{
    // run() on each substrate reproduces compare()'s two legs.
    Machine machine;
    const auto g = denseGraph();
    const auto req = RunRequest::gpm(gpm::GpmApp::T, g);
    const Comparison cmp = machine.compare(req);
    const RunResult cpu = machine.run(req, Substrate::Cpu);
    const RunResult sc = machine.run(req, Substrate::SparseCore);
    EXPECT_EQ(cpu.functionalResult, cmp.functionalResult);
    EXPECT_EQ(sc.functionalResult, cmp.functionalResult);
    EXPECT_EQ(cpu.cycles, cmp.baseline.cycles);
    EXPECT_EQ(sc.cycles, cmp.accelerated.cycles);
}

TEST(Machine, RootStridePlumbing)
{
    Machine machine;
    const auto g = denseGraph();
    const auto full = machine.run(
        RunRequest::gpm(gpm::GpmApp::T, g, withRootStride(1)),
        Substrate::SparseCore);
    const auto sampled = machine.run(
        RunRequest::gpm(gpm::GpmApp::T, g, withRootStride(4)),
        Substrate::SparseCore);
    EXPECT_LT(sampled.cycles, full.cycles);
    EXPECT_LT(sampled.functionalResult, full.functionalResult);
}

TEST(Machine, ZeroStrideIsRejected)
{
    Machine machine;
    const auto g = denseGraph();
    EXPECT_THROW(
        machine.run(
            RunRequest::gpm(gpm::GpmApp::T, g, withRootStride(0)),
            Substrate::Cpu),
        SimError);
}

TEST(Machine, NestedIntersectionSpeedsUpTriangles)
{
    // §6.3.2: the nested-intersection apps beat their *S variants.
    Machine machine;
    const auto g = denseGraph();
    const auto t = machine.run(RunRequest::gpm(gpm::GpmApp::T, g),
                               Substrate::SparseCore);
    const auto ts = machine.run(RunRequest::gpm(gpm::GpmApp::TS, g),
                                Substrate::SparseCore);
    EXPECT_EQ(t.functionalResult, ts.functionalResult);
    EXPECT_LT(t.cycles, ts.cycles);
}

TEST(Machine, DenserGraphsGetLargerSpeedups)
{
    // §6.3.2: higher average degree -> longer streams -> larger wins.
    Machine machine;
    const auto sparse =
        graph::generateChungLu(2000, 6000, 60, 2.3, 7, "sparse");
    const auto dense =
        graph::generateChungLu(2000, 40000, 400, 1.9, 8, "dense");
    const auto s_cmp =
        machine.compare(RunRequest::gpm(gpm::GpmApp::T, sparse));
    const auto d_cmp =
        machine.compare(RunRequest::gpm(gpm::GpmApp::T, dense));
    EXPECT_GT(d_cmp.speedup(), s_cmp.speedup());
}

TEST(Machine, MoreSusHelpDefaultConfig)
{
    arch::SparseCoreConfig one;
    one.numSus = 1;
    arch::SparseCoreConfig four;
    four.numSus = 4;
    const auto g = denseGraph();
    const auto req = RunRequest::gpm(gpm::GpmApp::C4, g);
    const auto r1 = Machine(one).run(req, Substrate::SparseCore);
    const auto r4 = Machine(four).run(req, Substrate::SparseCore);
    EXPECT_LT(r4.cycles, r1.cycles);
}

TEST(Machine, SpmspmComparison)
{
    // Representative density/row lengths (tiny matrices sit near
    // parity for the merge-class dataflows: per-op overhead vs the
    // CPU's workspace loop — see EXPERIMENTS.md).
    Machine machine;
    const auto a = tensor::generateMatrix(
        400, 400, 14000, tensor::MatrixStructure::Uniform, 9, "A");
    for (const auto algorithm :
         {kernels::SpmspmAlgorithm::Inner,
          kernels::SpmspmAlgorithm::Outer,
          kernels::SpmspmAlgorithm::Gustavson}) {
        const Comparison cmp =
            machine.compare(RunRequest::spmspm(a, a, algorithm));
        EXPECT_GT(cmp.speedup(), 1.0)
            << kernels::spmspmAlgorithmName(algorithm);
    }
}

TEST(Machine, TensorComparisons)
{
    Machine machine;
    const auto t = tensor::generateTensor(40, 30, 100, 3000, 11, "T");
    const auto v = tensor::generateVector(100, 12);
    EXPECT_GT(machine.compare(RunRequest::ttv(t, v)).speedup(), 1.0);
    const auto b = tensor::generateMatrix(
        16, 100, 600, tensor::MatrixStructure::Uniform, 13, "B");
    EXPECT_GT(machine.compare(RunRequest::ttm(t, b)).speedup(), 1.0);
}

TEST(Machine, FsmComparison)
{
    Machine machine;
    const auto lg = graph::LabeledGraph::withRandomLabels(
        denseGraph(), 4, 15);
    const Comparison cmp = machine.compare(RunRequest::fsm(lg, 20));
    EXPECT_GT(cmp.functionalResult, 0u);
    EXPECT_GT(cmp.speedup(), 0.8);
}

TEST(Machine, DedicatedHostPoolMatchesGlobalPool)
{
    // hostThreads only picks the host pool for the replay legs; the
    // simulated outcome is bit-identical.
    Machine machine;
    const auto g = denseGraph();
    RunOptions options;
    options.hostThreads = 2;
    const auto shared =
        machine.compare(RunRequest::gpm(gpm::GpmApp::T, g));
    const auto dedicated =
        machine.compare(RunRequest::gpm(gpm::GpmApp::T, g, options));
    EXPECT_EQ(shared.functionalResult, dedicated.functionalResult);
    EXPECT_EQ(shared.baseline.cycles, dedicated.baseline.cycles);
    EXPECT_EQ(shared.accelerated.cycles, dedicated.accelerated.cycles);
}

TEST(Report, FormattingContainsEverything)
{
    Comparison cmp;
    cmp.functionalResult = 42;
    cmp.baseline = {"cpu", 1000, {}};
    cmp.accelerated = {"sparsecore", 100, {}};
    const std::string text = cmp.str();
    EXPECT_NE(text.find("42"), std::string::npos);
    EXPECT_NE(text.find("10.00x"), std::string::npos);
    EXPECT_NE(text.find("cpu"), std::string::npos);
}

TEST(Report, BreakdownString)
{
    sim::CycleBreakdown bd;
    bd[sim::CycleClass::Cache] = 50;
    bd[sim::CycleClass::Intersection] = 50;
    const std::string text = breakdownStr(bd);
    EXPECT_NE(text.find("Cache 50.0%"), std::string::npos);
    EXPECT_NE(text.find("Intersection 50.0%"), std::string::npos);
}
