#!/usr/bin/env bash
# Golden-diagnostic driver for the scverify CLI: every fixture under
# tests/data/scverify/ must make scverify exit nonzero AND print the
# rule id its filename encodes (use_after_free.s -> [use-after-free]).
# Run by ctest (see tests/CMakeLists.txt):
#   scverify_fixtures.sh <path-to-scverify> <fixture-dir>
set -u

scverify=$1
dir=$2
fail=0

for f in "$dir"/*.s; do
    rule=$(basename "$f" .s | tr _ -)
    out=$("$scverify" "$f" 2>&1)
    status=$?
    if [ "$status" -ne 1 ]; then
        echo "FAIL: $f: expected exit 1, got $status"
        echo "$out"
        fail=1
        continue
    fi
    case "$out" in
      *"[$rule]"*)
        echo "ok: $f -> [$rule]"
        ;;
      *)
        echo "FAIL: $f: no [$rule] diagnostic in output:"
        echo "$out"
        fail=1
        ;;
    esac
done

exit $fail
