#!/usr/bin/env bash
# Full local check: regular build + complete test suite, then a
# ThreadSanitizer build running the concurrency-sensitive suites
# (thread pool, host-parallel mining, machine comparisons), then an
# ASan+UBSan build running the trace capture/replay/serialization
# suites (arena ownership and event-decoding bugs show up here).
#
# Usage: scripts/check.sh [build-dir-prefix]
set -euo pipefail
cd "$(dirname "$0")/.."

prefix="${1:-build}"

echo "=== regular build + full ctest ==="
cmake -B "${prefix}" -S . >/dev/null
cmake --build "${prefix}" -j"$(nproc)"
ctest --test-dir "${prefix}" --output-on-failure -j"$(nproc)"

echo
echo "=== TSan build + parallel suites ==="
cmake -B "${prefix}-tsan" -S . -DSPARSECORE_SANITIZE=thread >/dev/null
cmake --build "${prefix}-tsan" -j"$(nproc)" --target sparsecore_tests
"${prefix}-tsan/tests/sparsecore_tests" \
    --gtest_filter='ThreadPool.*:HostParallel.*:Parallel.*:Machine*.*'

echo
echo "=== ASan+UBSan build + trace/replay suites ==="
cmake -B "${prefix}-asan" -S . \
    -DSPARSECORE_SANITIZE=address,undefined >/dev/null
cmake --build "${prefix}-asan" -j"$(nproc)" --target sparsecore_tests
"${prefix}-asan/tests/sparsecore_tests" \
    --gtest_filter='Trace*:Seeds/TraceReplay*'

echo
echo "All checks passed."
