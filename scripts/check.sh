#!/usr/bin/env bash
# Full local check: regular build + complete test suite, then a
# ThreadSanitizer build running the concurrency-sensitive suites
# (thread pool, host-parallel mining, machine comparisons).
#
# Usage: scripts/check.sh [build-dir-prefix]
set -euo pipefail
cd "$(dirname "$0")/.."

prefix="${1:-build}"

echo "=== regular build + full ctest ==="
cmake -B "${prefix}" -S . >/dev/null
cmake --build "${prefix}" -j"$(nproc)"
ctest --test-dir "${prefix}" --output-on-failure -j"$(nproc)"

echo
echo "=== TSan build + parallel suites ==="
cmake -B "${prefix}-tsan" -S . -DSPARSECORE_SANITIZE=thread >/dev/null
cmake --build "${prefix}-tsan" -j"$(nproc)" --target sparsecore_tests
"${prefix}-tsan/tests/sparsecore_tests" \
    --gtest_filter='ThreadPool.*:HostParallel.*:Parallel.*:Machine*.*'

echo
echo "All checks passed."
