#!/usr/bin/env bash
# Full local check: regular build + complete test suite, then the
# same suite with the runtime verifier hooks forced on, then again
# under each forced trace-replay engine (SC_REPLAY=event|bytecode),
# then the scverify static-verifier leg over the example programs,
# the golden trace and the golden bytecode program, a scverify v2
# leg diffing --json --summary output (diagnostics, pressure
# profiles, cost bounds) against the blessed golden, a clang-tidy
# leg (skipped when the tool is absent),
# then a ThreadSanitizer build running the concurrency-sensitive
# suites (thread pool, host-parallel mining, machine comparisons,
# artifact-store/LRU-cache races), then an ASan+UBSan build running
# the trace capture/replay/serialization + artifact-store suites
# (arena ownership and event-decoding bugs show up here), then a
# forced-scalar kernel build (SIMD TUs omitted) with the full suite
# under SC_FORCE_KERNEL=scalar, kernel and replay microbench smoke
# runs, an artifact-store cold/warm sweep leg: fig12 with
# SC_ARTIFACT_CACHE=off and =on must emit bit-identical cycles while
# the warm run compiles each (app, dataset) exactly once, and a job
# server smoke leg: a 12-job mixed batch through the jsonl front end
# must be byte-identical queued vs sequential with deterministic
# artifact-store hit counts (the TSan leg also soaks JobQueue under
# concurrent submitters), then a scheduler leg: the same batch under
# --sched fifo vs --sched affinity must stay byte-identical while
# affinity reports zero in-store waits (parked siblings instead of
# blocked workers) and the throughput bench self-gates the >= 1.3x
# affinity-vs-fifo claim on hosts with >= 4 cores.
#
# Usage: scripts/check.sh [build-dir-prefix]
set -euo pipefail
cd "$(dirname "$0")/.."

prefix="${1:-build}"

echo "=== regular build + full ctest ==="
cmake -B "${prefix}" -S . >/dev/null
cmake --build "${prefix}" -j"$(nproc)"
ctest --test-dir "${prefix}" --output-on-failure -j"$(nproc)"

echo
echo "=== full ctest, verifier hooks forced on ==="
# SC_VERIFY=1 turns the Machine::run / trace::replay verification
# wrappers on regardless of build type, so every trace the suite
# produces goes through the stream-lifetime checker.
SC_VERIFY=1 ctest --test-dir "${prefix}" \
    --output-on-failure -j"$(nproc)"

echo
echo "=== full ctest, forced replay engines ==="
# Both trace-replay engines must pass the whole suite: the per-event
# virtual walker (the bit-identity reference) and the compiled
# bytecode loops the suite exercises by default.
SC_REPLAY=event ctest --test-dir "${prefix}" \
    --output-on-failure -j"$(nproc)"
SC_REPLAY=bytecode ctest --test-dir "${prefix}" \
    --output-on-failure -j"$(nproc)"

echo
echo "=== scverify: example programs + golden trace + bytecode ==="
"${prefix}/tools/scverify" examples/asm/*.s \
    tests/data/golden_trace.bin tests/data/golden_trace.scbc

echo
echo "=== scverify v2: quantitative summaries vs blessed goldens ==="
# --json --summary over every emitted kernel program, the rule
# fixtures, the golden trace and the golden SCBC image must be
# byte-identical to the blessed output (pins diagnostic ordering,
# the pressure profiles and the cost bounds). The rule fixtures
# carry error diagnostics by design, so the expected exit is 1.
sv_tmp="$(mktemp -d)"
sv_rc=0
"${prefix}/tools/scverify" --json --summary \
    examples/asm/*.s \
    tests/data/scverify/*.s \
    tests/data/golden_trace.bin tests/data/golden_trace.scbc \
    > "${sv_tmp}/scverify.json" || sv_rc=$?
test "${sv_rc}" -eq 1
diff tests/data/scverify_golden.json "${sv_tmp}/scverify.json"
rm -rf "${sv_tmp}"
echo "scverify --json --summary output matches the blessed golden"

echo
echo "=== clang-tidy ==="
if command -v clang-tidy >/dev/null 2>&1; then
    # compile_commands.json is exported by the top-level CMakeLists;
    # the profile lives in .clang-tidy at the repo root.
    clang-tidy -p "${prefix}/compile_commands.json" --quiet \
        src/*/*.cc tools/*.cc
else
    echo "clang-tidy not installed; skipping (profile: .clang-tidy)"
fi

echo
echo "=== full ctest, forced array set-index policy ==="
SC_FORCE_SETINDEX=array ctest --test-dir "${prefix}" \
    --output-on-failure -j"$(nproc)"

echo
echo "=== full ctest, forced bitmap set-index policy ==="
SC_FORCE_SETINDEX=bitmap ctest --test-dir "${prefix}" \
    --output-on-failure -j"$(nproc)"

echo
echo "=== TSan build + parallel suites ==="
cmake -B "${prefix}-tsan" -S . -DSPARSECORE_SANITIZE=thread >/dev/null
cmake --build "${prefix}-tsan" -j"$(nproc)" --target sparsecore_tests
"${prefix}-tsan/tests/sparsecore_tests" \
    --gtest_filter='ThreadPool.*:HostParallel.*:Parallel.*:Machine*.*:LruCache.*:ArtifactStore.*:JobQueue.*:Scheduler.*'

echo
echo "=== ASan+UBSan build + trace/replay suites ==="
cmake -B "${prefix}-asan" -S . \
    -DSPARSECORE_SANITIZE=address,undefined >/dev/null
cmake --build "${prefix}-asan" -j"$(nproc)" --target sparsecore_tests
"${prefix}-asan/tests/sparsecore_tests" \
    --gtest_filter='Trace*:Seeds/TraceReplay*:Bytecode*:ArtifactStore.*:LruCache.*'

echo
echo "=== forced-scalar kernel build + full ctest ==="
cmake -B "${prefix}-scalar" -S . \
    -DSPARSECORE_FORCE_SCALAR_KERNELS=ON >/dev/null
cmake --build "${prefix}-scalar" -j"$(nproc)"
SC_FORCE_KERNEL=scalar ctest --test-dir "${prefix}-scalar" \
    --output-on-failure -j"$(nproc)"

echo
echo "=== kernel microbench smoke ==="
(cd "${prefix}" && bench/kernel_microbench --smoke)

echo
echo "=== replay microbench smoke ==="
# Gates the compiled-replay perf claim (>=5x on the functional
# substrate) and the cross-engine cycle checksums.
(cd "${prefix}" && bench/replay_microbench --smoke)

echo
echo "=== artifact store: cold vs warm sweep bit-identity ==="
# fig12 replays each of its 36 (app, graph) points across a 5-SU
# ladder. With the store on, every point must capture and compile
# exactly once (36 trace misses, 36 program misses) while the other
# 144 ladder replays hit the shared program — and the emitted cycle
# numbers must match the store-off run bit for bit.
fig12_bin="$(cd "${prefix}" && pwd)/bench/fig12_su_sweep"
store_tmp="$(mktemp -d)"
(cd "${store_tmp}" && SC_BENCH_SMOKE=1 SC_ARTIFACT_CACHE=off \
    "${fig12_bin}" > off.txt)
(cd "${store_tmp}" && SC_BENCH_SMOKE=1 SC_ARTIFACT_CACHE=on \
    "${fig12_bin}" > on.txt)
sed -n '/-- csv --/,/^$/p' "${store_tmp}/off.txt" > "${store_tmp}/off.csv"
sed -n '/-- csv --/,/^$/p' "${store_tmp}/on.txt" > "${store_tmp}/on.csv"
diff "${store_tmp}/off.csv" "${store_tmp}/on.csv"
grep -q 'traces 0 hits / 36 misses | programs 144 hits / 36 misses' \
    "${store_tmp}/on.txt"
grep -q 'traces 0 hits / 0 misses | programs 0 hits / 0 misses' \
    "${store_tmp}/off.txt"
# The bench self-gates the scverify-v2 claim at every ladder point:
# the static [lower, upper] cycle interval must bracket the
# dynamically simulated cycles (it exits nonzero and names the
# offending point otherwise).
grep -q 'static cost bounds bracket dynamic cycles at all' \
    "${store_tmp}/on.txt"
grep -q 'static cost bounds bracket dynamic cycles at all' \
    "${store_tmp}/off.txt"
rm -rf "${store_tmp}"
echo "cold/warm cycles bit-identical; warm run compiled 36/36 once"

echo
echo "=== job server: queued vs sequential bit-identity ==="
# A 12-job mixed multi-tenant batch (every workload class, both
# modes, shared datasets) through the jsonl server front end. The
# queued run — any width, warm or cold store — must emit reports
# byte-identical to sequential Machine execution; with a single
# worker the artifact-store hit counts are deterministic: g1/g2
# share the (T, W) trace+program, f1/f2 share the FSM key, g3 and
# g4 are distinct misses, tensor jobs are not store-keyed.
server_bin="$(cd "${prefix}" && pwd)/examples/example_sparsecore_server"
server_tmp="$(mktemp -d)"
cat > "${server_tmp}/batch12.jsonl" <<'EOF'
{"version":1,"id":"g1","workload":"gpm","app":"T","dataset":"W"}
{"version":1,"id":"g2","workload":"gpm","app":"T","dataset":"W","mode":"run","substrate":"sparsecore"}
{"version":1,"id":"g3","workload":"gpm","app":"TC","dataset":"W","mode":"run","substrate":"cpu"}
{"version":1,"id":"g4","workload":"gpm","app":"T","dataset":"C"}
{"version":1,"id":"f1","workload":"fsm","dataset":"C","min_support":500}
{"version":1,"id":"f2","workload":"fsm","dataset":"C","min_support":500,"mode":"run","substrate":"sparsecore"}
{"version":1,"id":"s1","workload":"spmspm","dataset":"C"}
{"version":1,"id":"s2","workload":"spmspm","dataset":"C","algorithm":"inner","mode":"run","substrate":"cpu"}
{"version":1,"id":"s3","workload":"spmspm","dataset":"E","options":{"stride":4}}
{"version":1,"id":"t1","workload":"ttv","dataset":"Ch","options":{"stride":8}}
{"version":1,"id":"t2","workload":"ttv","dataset":"Ch","options":{"stride":8},"mode":"run","substrate":"cpu"}
{"version":1,"id":"t3","workload":"ttm","dataset":"U","options":{"stride":16}}
EOF
"${server_bin}" --sequential --no-timing \
    < "${server_tmp}/batch12.jsonl" > "${server_tmp}/seq.jsonl"
"${server_bin}" --no-timing \
    < "${server_tmp}/batch12.jsonl" > "${server_tmp}/queued.jsonl"
diff "${server_tmp}/seq.jsonl" "${server_tmp}/queued.jsonl"
"${server_bin}" --jobs-threads 1 --stats \
    < "${server_tmp}/batch12.jsonl" > "${server_tmp}/ordered.jsonl"
grep -q '"trace_hits":2' "${server_tmp}/ordered.jsonl"
grep -q '"trace_misses":4' "${server_tmp}/ordered.jsonl"
grep -q '"program_hits":2' "${server_tmp}/ordered.jsonl"
grep -q '"program_misses":4' "${server_tmp}/ordered.jsonl"
echo "12-job batch: queued == sequential; store hits deterministic"

echo
echo "=== job scheduler: fifo vs affinity bit-identity + convoy counters ==="
# The same 12-job batch under both scheduling policies at 2 workers.
# Reports must stay byte-identical to the sequential reference for
# any policy — the scheduler only reorders dispatch, never results.
# With >= 2 workers, fifo sends same-dataset neighbours (g1/g2,
# f1/f2) into the pool together, so one blocks on the other's
# in-flight capture (store waits > 0); affinity parks the sibling
# until its warmer lands, so it must report zero trace/program
# waits, one warmer per keyed lane, and convoys avoided.
"${server_bin}" --sched fifo --jobs-threads 2 --no-timing \
    < "${server_tmp}/batch12.jsonl" > "${server_tmp}/fifo.jsonl"
"${server_bin}" --sched affinity --jobs-threads 2 --no-timing \
    < "${server_tmp}/batch12.jsonl" > "${server_tmp}/affinity.jsonl"
diff "${server_tmp}/seq.jsonl" "${server_tmp}/fifo.jsonl"
diff "${server_tmp}/seq.jsonl" "${server_tmp}/affinity.jsonl"
"${server_bin}" --sched fifo --jobs-threads 2 --stats \
    < "${server_tmp}/batch12.jsonl" | tail -1 \
    > "${server_tmp}/fifo_stats.json"
"${server_bin}" --sched affinity --jobs-threads 2 --stats \
    < "${server_tmp}/batch12.jsonl" | tail -1 \
    > "${server_tmp}/affinity_stats.json"
grep -q '"policy":"affinity"' "${server_tmp}/affinity_stats.json"
grep -q '"trace_waits":0,"program_waits":0' \
    "${server_tmp}/affinity_stats.json"
grep -q '"warmers":4' "${server_tmp}/affinity_stats.json"
fifo_waits="$(grep -o '"trace_waits":[0-9]*' \
    "${server_tmp}/fifo_stats.json" | grep -o '[0-9]*$')"
aff_convoys="$(grep -o '"convoy_avoided":[0-9]*' \
    "${server_tmp}/affinity_stats.json" | grep -o '[0-9]*$')"
test "${fifo_waits}" -gt 0
test "${aff_convoys}" -gt 0
rm -rf "${server_tmp}"
echo "policies bit-identical; fifo blocked in-store ${fifo_waits}x," \
    "affinity parked instead (${aff_convoys} convoys avoided)"

echo
echo "=== server throughput bench smoke (scheduler gate) ==="
# Gates the affinity-vs-fifo jobs/sec claim (>= 1.3x at >= 4
# workers) on hosts wide enough to overlap captures — the binary
# arms the gate itself when hardware_concurrency >= 4; narrower
# hosts still assert per-job cycle bit-identity across every
# policy x width cell.
(cd "${prefix}" && SC_BENCH_SMOKE=1 bench/server_throughput)

# Keep the tracked bench snapshots in sync with what this run
# produced (bench/results/README.md describes provenance; re-bless
# them from a full, non-smoke run before committing perf claims).
# Bench binaries write into bench_results/ under their cwd
# (SC_BENCH_DIR overrides).
mkdir -p bench/results
cp -f "${prefix}"/bench_results/BENCH_*.json bench/results/

echo
echo "All checks passed."
