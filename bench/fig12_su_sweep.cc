/**
 * @file
 * Figure 12: SparseCore speedup (vs the 1-SU configuration) with 1,
 * 2, 4, 8, 16 SUs, for all nine GPM apps on B, E, F, W. Each (app,
 * graph) point fetches its trace and compiled program from the
 * ArtifactStore — captured and compiled exactly once — and replays
 * them across the SU ladder independently on the host pool.
 *
 * Every ladder point also self-gates the static cost-bound analysis:
 * the [lower, upper] interval summarizeTrace derives for the point's
 * config must bracket the dynamically simulated cycles (check.sh
 * greps the confirmation line).
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/summary.hh"
#include "backend/sparsecore_backend.hh"
#include "bench_util.hh"
#include "trace/replay.hh"

int
main()
{
    using namespace sc;
    arch::SparseCoreConfig base;
    bench::printHeader("Figure 12", "varying the number of SUs", base);

    bench::BenchReport report("fig12");
    const std::vector<unsigned> su_counts = {1, 2, 4, 8, 16};
    std::atomic<unsigned> bracketed{0};
    std::atomic<unsigned> ladder_points{0};
    for (const gpm::GpmApp app : gpm::allGpmApps()) {
        const auto keys = graph::smallGraphKeys();
        using Row = std::vector<std::string>;
        const auto rows = bench::runPoints<Row>(
            keys.size(), [&](std::size_t p) {
                const std::string &key = keys[p];
                const graph::CsrGraph &g = graph::loadGraph(key);
                const unsigned stride =
                    bench::autoStride(g, app, 8'000'000);
                const auto artifacts =
                    bench::gpmArtifacts(app, g, stride);
                Row row = {key + (stride > 1 ? "*" : "")};
                Cycles one_su = 0;
                for (const unsigned sus : su_counts) {
                    arch::SparseCoreConfig config = base;
                    config.numSus = sus;
                    backend::SparseCoreBackend be(config);
                    const Cycles cyc =
                        bench::replayArtifacts(artifacts, be).cycles;
                    const analysis::ProgramSummary summary =
                        analysis::summarizeTrace(
                            artifacts.cached->trace, config);
                    ladder_points.fetch_add(1);
                    if (summary.cost.valid &&
                        summary.cost.contains(cyc))
                        bracketed.fetch_add(1);
                    else
                        std::fprintf(
                            stderr,
                            "fig12: bounds [%llu, %llu] miss %llu "
                            "cycles (%s on %s, %u SUs)\n",
                            static_cast<unsigned long long>(
                                summary.cost.lower),
                            static_cast<unsigned long long>(
                                summary.cost.upper),
                            static_cast<unsigned long long>(cyc),
                            gpm::gpmAppName(app), key.c_str(), sus);
                    if (sus == 1)
                        one_su = cyc;
                    row.push_back(Table::speedup(
                        static_cast<double>(one_su) /
                        static_cast<double>(cyc)));
                }
                return row;
            });
        Table table({"graph", "1 SU", "2 SU", "4 SU", "8 SU",
                     "16 SU"});
        for (const Row &row : rows)
            table.addRow(row);
        report.emit(gpm::gpmAppName(app), table);
    }
    if (bracketed.load() != ladder_points.load()) {
        std::fprintf(stderr,
                     "fig12: static bounds missed dynamic cycles at "
                     "%u of %u ladder points\n",
                     ladder_points.load() - bracketed.load(),
                     ladder_points.load());
        return 1;
    }
    std::printf("fig12: static cost bounds bracket dynamic cycles at "
                "all %u ladder points\n",
                ladder_points.load());
    return 0;
}
