/**
 * @file
 * Figure 9: CPU-baseline execution-cycle breakdown (Cache /
 * Mispred. / Other computation / Intersection) for TC, TM, TS, 4C,
 * 5C, TT on all ten graphs.
 */

#include <cstdio>

#include "api/machine.hh"
#include "bench_util.hh"

int
main()
{
    using namespace sc;
    using gpm::GpmApp;
    api::Machine machine;
    bench::printHeader("Figure 9", "CPU execution breakdown",
                       machine.config());

    const std::vector<GpmApp> apps = {GpmApp::TC, GpmApp::TM,
                                      GpmApp::TS, GpmApp::C4,
                                      GpmApp::C5, GpmApp::TT};
    for (const GpmApp app : apps) {
        Table table({"graph", "Cache%", "Mispred%", "OtherComp%",
                     "Intersection%"});
        for (const auto &key : graph::allGraphKeys()) {
            const graph::CsrGraph &g = graph::loadGraph(key);
            const unsigned stride = bench::autoStride(g, app);
            const auto res = machine.mineCpu(app, g, stride);
            const auto &bd = res.breakdown;
            table.addRow(
                {key + (stride > 1 ? "*" : ""),
                 Table::num(100 * bd.fraction(sim::CycleClass::Cache),
                            1),
                 Table::num(
                     100 * bd.fraction(sim::CycleClass::Mispredict),
                     1),
                 Table::num(
                     100 * bd.fraction(sim::CycleClass::OtherCompute),
                     1),
                 Table::num(
                     100 * bd.fraction(sim::CycleClass::Intersection),
                     1)});
        }
        std::printf("--- %s ---\n", gpm::gpmAppName(app));
        bench::emitTable(table);
    }
    return 0;
}
