/**
 * @file
 * Figure 15: tensor-computation speedups over the CPU baseline —
 * spmspm with inner-product, outer-product and Gustavson on the
 * eleven Table-5 matrices, plus TTV and TTM on the two tensors.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "api/machine.hh"
#include "bench_util.hh"
#include "common/table.hh"
#include "tensor/tensor_datasets.hh"
#include "tensor/tensor_gen.hh"

namespace {

/** Row stride keeping each matrix cell's work bounded. */
unsigned
matrixStride(const sc::tensor::SparseMatrix &m,
             sc::kernels::SpmspmAlgorithm algorithm)
{
    using sc::kernels::SpmspmAlgorithm;
    // Inner product touches rows x cols pairs; sample it the
    // hardest. Outer/Gustavson scale with flops.
    const double pairs = static_cast<double>(m.rows()) * m.rows();
    const double nnz = static_cast<double>(m.nnz());
    double work = 0;
    double budget = 0;
    switch (algorithm) {
      case SpmspmAlgorithm::Inner:
        // Every (i,j) pair costs simulated stream setup even when
        // the operands barely overlap; budget the pair count.
        work = pairs + nnz * 16;
        budget = 1.5e6;
        break;
      default:
        work = nnz * nnz / std::max(1.0, double(m.rows())) * 4;
        budget = 16e6;
        break;
    }
    return work <= budget
               ? 1
               : static_cast<unsigned>(work / budget + 1.0);
}

} // namespace

int
main()
{
    using namespace sc;
    using kernels::SpmspmAlgorithm;
    api::Machine machine;
    bench::printHeader("Figure 15", "tensor computation speedup",
                       machine.config());
    bench::BenchReport report("fig15");

    struct Point
    {
        std::vector<std::string> row;
        double speedup = 1.0;
    };

    for (const auto algorithm :
         {SpmspmAlgorithm::Inner, SpmspmAlgorithm::Outer,
          SpmspmAlgorithm::Gustavson}) {
        const auto keys = tensor::allMatrixKeys();
        const auto points = bench::runPoints<Point>(
            keys.size(), [&](std::size_t p) {
                const std::string &key = keys[p];
                const tensor::SparseMatrix &m =
                    tensor::loadMatrix(key);
                const unsigned stride = matrixStride(m, algorithm);
                api::RunOptions options;
                options.stride = stride;
                const auto cmp = machine.compare(
                    api::RunRequest::spmspm(m, m, algorithm, options));
                return Point{
                    {key + (stride > 1 ? "*" : ""),
                     std::to_string(cmp.baseline.cycles),
                     std::to_string(cmp.accelerated.cycles),
                     Table::speedup(cmp.speedup())},
                    cmp.speedup()};
            });
        Table table({"matrix", "cpu cycles", "sc cycles", "speedup"});
        std::vector<double> speedups;
        for (const Point &pt : points) {
            table.addRow(pt.row);
            speedups.push_back(pt.speedup);
        }
        table.addRow({"gmean", "", "",
                      Table::speedup(geomean(speedups))});
        report.emit(std::string("spmspm ") +
                        kernels::spmspmAlgorithmName(algorithm) +
                        " (C = A*A)",
                    table);
    }

    // TTV and TTM on the two FROSTT-like tensors.
    using Row = std::vector<std::string>;
    const auto tensor_keys = tensor::allTensorKeys();
    const auto ttv_rows = bench::runPoints<Row>(
        tensor_keys.size(), [&](std::size_t p) {
            const std::string &key = tensor_keys[p];
            const tensor::CsfTensor &t = tensor::loadTensor(key);
            const auto vec = tensor::generateVector(t.dimK(), 0x77);
            const unsigned stride =
                static_cast<unsigned>(t.nnz() / 4'000'000 + 1);
            api::RunOptions options;
            options.stride = stride;
            const auto cmp = machine.compare(
                api::RunRequest::ttv(t, vec, options));
            return Row{key + (stride > 1 ? "*" : ""),
                       std::to_string(cmp.baseline.cycles),
                       std::to_string(cmp.accelerated.cycles),
                       Table::speedup(cmp.speedup())};
        });
    Table ttv_table({"tensor", "cpu cycles", "sc cycles", "speedup"});
    for (const Row &row : ttv_rows)
        ttv_table.addRow(row);
    report.emit("TTV (Z(i,j) = sum_k A(i,j,k) v(k))", ttv_table);

    const auto ttm_rows = bench::runPoints<Row>(
        tensor_keys.size(), [&](std::size_t p) {
            const std::string &key = tensor_keys[p];
            const tensor::CsfTensor &t = tensor::loadTensor(key);
            // B: a modest sparse matrix with the tensor's k-dim
            // columns.
            const auto b = tensor::generateMatrix(
                64, t.dimK(), 16 * t.dimK(),
                tensor::MatrixStructure::Uniform, 0x78, "B");
            const unsigned stride =
                static_cast<unsigned>(t.nnz() / 400'000 + 1);
            api::RunOptions options;
            options.stride = stride;
            const auto cmp = machine.compare(
                api::RunRequest::ttm(t, b, options));
            return Row{key + (stride > 1 ? "*" : ""),
                       std::to_string(cmp.baseline.cycles),
                       std::to_string(cmp.accelerated.cycles),
                       Table::speedup(cmp.speedup())};
        });
    Table ttm_table({"tensor", "cpu cycles", "sc cycles", "speedup"});
    for (const Row &row : ttm_rows)
        ttm_table.addRow(row);
    report.emit("TTM (Z(i,j,k) = sum_l A(i,j,l) B(k,l))", ttm_table);
    std::printf("(* = row/slice-sampled dataset, identical stride on "
                "both substrates)\n");
    return 0;
}
