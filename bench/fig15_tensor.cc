/**
 * @file
 * Figure 15: tensor-computation speedups over the CPU baseline —
 * spmspm with inner-product, outer-product and Gustavson on the
 * eleven Table-5 matrices, plus TTV and TTM on the two tensors.
 */

#include <cstdio>

#include "api/machine.hh"
#include "bench_util.hh"
#include "common/table.hh"
#include "tensor/tensor_datasets.hh"
#include "tensor/tensor_gen.hh"

namespace {

/** Row stride keeping each matrix cell's work bounded. */
unsigned
matrixStride(const sc::tensor::SparseMatrix &m,
             sc::kernels::SpmspmAlgorithm algorithm)
{
    using sc::kernels::SpmspmAlgorithm;
    // Inner product touches rows x cols pairs; sample it the
    // hardest. Outer/Gustavson scale with flops.
    const double pairs = static_cast<double>(m.rows()) * m.rows();
    const double nnz = static_cast<double>(m.nnz());
    double work = 0;
    double budget = 0;
    switch (algorithm) {
      case SpmspmAlgorithm::Inner:
        // Every (i,j) pair costs simulated stream setup even when
        // the operands barely overlap; budget the pair count.
        work = pairs + nnz * 16;
        budget = 1.5e6;
        break;
      default:
        work = nnz * nnz / std::max(1.0, double(m.rows())) * 4;
        budget = 16e6;
        break;
    }
    return work <= budget
               ? 1
               : static_cast<unsigned>(work / budget + 1.0);
}

} // namespace

int
main()
{
    using namespace sc;
    using kernels::SpmspmAlgorithm;
    api::Machine machine;
    bench::printHeader("Figure 15", "tensor computation speedup",
                       machine.config());

    for (const auto algorithm :
         {SpmspmAlgorithm::Inner, SpmspmAlgorithm::Outer,
          SpmspmAlgorithm::Gustavson}) {
        Table table({"matrix", "cpu cycles", "sc cycles", "speedup"});
        std::vector<double> speedups;
        for (const auto &key : tensor::allMatrixKeys()) {
            const tensor::SparseMatrix &m = tensor::loadMatrix(key);
            const unsigned stride = matrixStride(m, algorithm);
            const auto cmp =
                machine.compareSpmspm(m, m, algorithm, stride);
            speedups.push_back(cmp.speedup());
            table.addRow({key + (stride > 1 ? "*" : ""),
                          std::to_string(cmp.baseline.cycles),
                          std::to_string(cmp.accelerated.cycles),
                          Table::speedup(cmp.speedup())});
        }
        table.addRow({"gmean", "", "",
                      Table::speedup(geomean(speedups))});
        std::printf("--- spmspm %s (C = A*A) ---\n",
                    kernels::spmspmAlgorithmName(algorithm));
        bench::emitTable(table);
    }

    // TTV and TTM on the two FROSTT-like tensors.
    std::printf("--- TTV (Z(i,j) = sum_k A(i,j,k) v(k)) ---\n");
    Table ttv_table({"tensor", "cpu cycles", "sc cycles", "speedup"});
    for (const auto &key : tensor::allTensorKeys()) {
        const tensor::CsfTensor &t = tensor::loadTensor(key);
        const auto vec = tensor::generateVector(t.dimK(), 0x77);
        const unsigned stride =
            static_cast<unsigned>(t.nnz() / 4'000'000 + 1);
        const auto cmp = machine.compareTtv(t, vec, stride);
        ttv_table.addRow({key + (stride > 1 ? "*" : ""),
                          std::to_string(cmp.baseline.cycles),
                          std::to_string(cmp.accelerated.cycles),
                          Table::speedup(cmp.speedup())});
    }
    bench::emitTable(ttv_table);

    std::printf("--- TTM (Z(i,j,k) = sum_l A(i,j,l) B(k,l)) ---\n");
    Table ttm_table({"tensor", "cpu cycles", "sc cycles", "speedup"});
    for (const auto &key : tensor::allTensorKeys()) {
        const tensor::CsfTensor &t = tensor::loadTensor(key);
        // B: a modest sparse matrix with the tensor's k-dim columns.
        const auto b = tensor::generateMatrix(
            64, t.dimK(), 16 * t.dimK(),
            tensor::MatrixStructure::Uniform, 0x78, "B");
        const unsigned stride =
            static_cast<unsigned>(t.nnz() / 400'000 + 1);
        const auto cmp = machine.compareTtm(t, b, stride);
        ttm_table.addRow({key + (stride > 1 ? "*" : ""),
                          std::to_string(cmp.baseline.cycles),
                          std::to_string(cmp.accelerated.cycles),
                          Table::speedup(cmp.speedup())});
    }
    bench::emitTable(ttm_table);
    std::printf("(* = row/slice-sampled dataset, identical stride on "
                "both substrates)\n");
    return 0;
}
