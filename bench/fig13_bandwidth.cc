/**
 * @file
 * Figure 13: SparseCore speedup (vs 2 elements/cycle) with aggregated
 * S-Cache + scratchpad bandwidth of 2, 4, 8, 16, 32, 64
 * elements/cycle, for all nine GPM apps on B, E, F, W. Each (app,
 * graph) point fetches its trace and compiled program from the
 * ArtifactStore (captured/compiled once, shared with other sweeps)
 * and replays them across the bandwidth ladder; points run
 * concurrently on the host pool.
 */

#include <string>
#include <vector>

#include "backend/sparsecore_backend.hh"
#include "bench_util.hh"
#include "trace/replay.hh"

int
main()
{
    using namespace sc;
    arch::SparseCoreConfig base;
    bench::printHeader("Figure 13",
                       "varying aggregated S-Cache bandwidth", base);
    bench::BenchReport report("fig13");

    const std::vector<unsigned> bandwidths = {2, 4, 8, 16, 32, 64};
    for (const gpm::GpmApp app : gpm::allGpmApps()) {
        const auto keys = graph::smallGraphKeys();
        using Row = std::vector<std::string>;
        const auto rows = bench::runPoints<Row>(
            keys.size(), [&](std::size_t p) {
                const std::string &key = keys[p];
                const graph::CsrGraph &g = graph::loadGraph(key);
                const unsigned stride =
                    bench::autoStride(g, app, 8'000'000);
                const auto artifacts =
                    bench::gpmArtifacts(app, g, stride);
                Row row = {key + (stride > 1 ? "*" : "")};
                Cycles slowest = 0;
                for (const unsigned bw : bandwidths) {
                    arch::SparseCoreConfig config = base;
                    config.aggregateBandwidth = bw;
                    backend::SparseCoreBackend be(config);
                    const Cycles cyc =
                        bench::replayArtifacts(artifacts, be).cycles;
                    if (bw == 2)
                        slowest = cyc;
                    row.push_back(Table::speedup(
                        static_cast<double>(slowest) /
                        static_cast<double>(cyc)));
                }
                return row;
            });
        Table table({"graph", "2/cyc", "4/cyc", "8/cyc", "16/cyc",
                     "32/cyc", "64/cyc"});
        for (const Row &row : rows)
            table.addRow(row);
        report.emit(gpm::gpmAppName(app), table);
    }
    return 0;
}
