/**
 * @file
 * Figure 13: SparseCore speedup (vs 2 elements/cycle) with aggregated
 * S-Cache + scratchpad bandwidth of 2, 4, 8, 16, 32, 64
 * elements/cycle, for all nine GPM apps on B, E, F, W.
 */

#include <cstdio>

#include "backend/sparsecore_backend.hh"
#include "bench_util.hh"

int
main()
{
    using namespace sc;
    arch::SparseCoreConfig base;
    bench::printHeader("Figure 13",
                       "varying aggregated S-Cache bandwidth", base);

    const std::vector<unsigned> bandwidths = {2, 4, 8, 16, 32, 64};
    for (const gpm::GpmApp app : gpm::allGpmApps()) {
        const auto plans = gpm::gpmAppPlans(app);
        Table table({"graph", "2/cyc", "4/cyc", "8/cyc", "16/cyc",
                     "32/cyc", "64/cyc"});
        for (const auto &key : graph::smallGraphKeys()) {
            const graph::CsrGraph &g = graph::loadGraph(key);
            const unsigned stride =
                bench::autoStride(g, app, 8'000'000);
            std::vector<std::string> row = {
                key + (stride > 1 ? "*" : "")};
            Cycles slowest = 0;
            for (const unsigned bw : bandwidths) {
                arch::SparseCoreConfig config = base;
                config.aggregateBandwidth = bw;
                backend::SparseCoreBackend be(config);
                gpm::PlanExecutor exec(g, be);
                exec.setRootStride(stride);
                const auto res = exec.runMany(plans);
                if (bw == 2)
                    slowest = res.cycles;
                row.push_back(Table::speedup(
                    static_cast<double>(slowest) /
                    static_cast<double>(res.cycles)));
            }
            table.addRow(std::move(row));
        }
        std::printf("--- %s ---\n", gpm::gpmAppName(app));
        bench::emitTable(table);
    }
    return 0;
}
