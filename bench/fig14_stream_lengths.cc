/**
 * @file
 * Figure 14: stream-length distributions. Left: CDF of operand
 * stream lengths per application on email-eu-core. Right: triangle
 * counting's stream-length CDF on every dataset (cut at 500, as in
 * the paper). Points are independent and run concurrently on the
 * host pool.
 */

#include <string>
#include <vector>

#include "backend/functional_backend.hh"
#include "bench_util.hh"
#include "gpm/executor.hh"

namespace {

/** Collect the stream-length histogram of one app on one graph. */
const sc::Histogram &
collect(sc::backend::FunctionalBackend &be, sc::gpm::GpmApp app,
        const sc::graph::CsrGraph &g, unsigned stride)
{
    sc::gpm::PlanExecutor exec(g, be);
    exec.setRootStride(stride);
    exec.runMany(sc::gpm::gpmAppPlans(app));
    return be.streamLengthHist();
}

} // namespace

int
main()
{
    using namespace sc;
    using gpm::GpmApp;
    arch::SparseCoreConfig config;
    bench::printHeader("Figure 14", "stream length distributions",
                       config);
    bench::BenchReport report("fig14");

    const std::vector<unsigned> points = {4,  8,  16,  32, 64,
                                          96, 128, 192, 256, 384};
    using Row = std::vector<std::string>;

    // Left: apps on email-eu-core (E).
    {
        const std::vector<GpmApp> apps = {GpmApp::T,  GpmApp::TM,
                                          GpmApp::TC, GpmApp::C4,
                                          GpmApp::C5, GpmApp::TT};
        const graph::CsrGraph &e = graph::loadGraph("E");
        const auto rows = bench::runPoints<Row>(
            apps.size(), [&](std::size_t p) {
                const GpmApp app = apps[p];
                backend::FunctionalBackend be;
                const auto &hist =
                    collect(be, app, e, bench::autoStride(e, app));
                Row row = {gpm::gpmAppName(app)};
                for (unsigned cut : points)
                    row.push_back(Table::num(hist.cdfAt(cut), 3));
                return row;
            });
        std::vector<std::string> header = {"app"};
        for (unsigned p : points)
            header.push_back("<=" + std::to_string(p));
        Table table(header);
        for (const Row &row : rows)
            table.addRow(row);
        report.emit("CDF of stream lengths by app, graph E", table);
    }

    // Right: triangle counting across all datasets, cut at 500.
    {
        const auto keys = graph::allGraphKeys();
        const auto rows = bench::runPoints<Row>(
            keys.size(), [&](std::size_t p) {
                const std::string &key = keys[p];
                const graph::CsrGraph &g = graph::loadGraph(key);
                const unsigned stride =
                    bench::autoStride(g, GpmApp::T);
                backend::FunctionalBackend be;
                const auto &hist = collect(be, GpmApp::T, g, stride);
                Row row = {key + (stride > 1 ? "*" : ""),
                           Table::num(hist.mean(), 1),
                           std::to_string(hist.percentile(0.5)),
                           std::to_string(hist.percentile(0.9)),
                           std::to_string(hist.percentile(0.99))};
                for (unsigned cut : {16u, 64u, 256u, 500u})
                    row.push_back(Table::num(hist.cdfAt(cut), 3));
                return row;
            });
        std::vector<std::string> header = {"graph", "mean", "p50",
                                           "p90", "p99"};
        for (unsigned p : {16u, 64u, 256u, 500u})
            header.push_back("<=" + std::to_string(p));
        Table table(header);
        for (const Row &row : rows)
            table.addRow(row);
        report.emit(
            "CDF of stream lengths for T, all graphs (cut at 500)",
            table);
    }
    return 0;
}
