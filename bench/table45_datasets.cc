/**
 * @file
 * Tables 4 and 5: the dataset registries. Prints each generated
 * dataset's realized statistics next to its published targets so the
 * synthetic substitution is auditable.
 */

#include <cstdio>

#include "bench_util.hh"
#include "tensor/tensor_datasets.hh"

int
main()
{
    using namespace sc;
    arch::SparseCoreConfig config;
    bench::printHeader("Tables 4 & 5", "dataset registries", config);

    std::printf("--- Table 4: graphs ---\n");
    Table graphs({"key", "name", "|V|", "|E|", "avg D", "max D",
                  "scale (paper/here)"});
    for (const auto &ds : graph::graphDatasets()) {
        const graph::CsrGraph &g = graph::loadGraph(ds.key);
        graphs.addRow({ds.key, ds.name,
                       std::to_string(g.numVertices()),
                       std::to_string(g.numEdges()),
                       Table::num(g.avgDegree(), 1),
                       std::to_string(g.maxDegree()),
                       Table::num(ds.scale, 1) + "x"});
    }
    bench::emitTable(graphs);

    std::printf("--- Table 5: matrices ---\n");
    Table matrices(
        {"key", "name", "dims", "nnz", "density%", "structure"});
    for (const auto &ds : tensor::matrixDatasets()) {
        const tensor::SparseMatrix &m = tensor::loadMatrix(ds.key);
        const char *structure =
            ds.structure == tensor::MatrixStructure::Uniform
                ? "uniform"
                : (ds.structure == tensor::MatrixStructure::Banded
                       ? "banded"
                       : "column-skewed");
        matrices.addRow(
            {ds.key, ds.name,
             std::to_string(m.rows()) + "x" + std::to_string(m.cols()),
             std::to_string(m.nnz()),
             Table::num(100.0 * m.density(), 3), structure});
    }
    bench::emitTable(matrices);

    std::printf("--- Table 5: tensors ---\n");
    Table tensors({"key", "name", "dims", "nnz", "scale"});
    for (const auto &ds : tensor::tensorDatasets()) {
        const tensor::CsfTensor &t = tensor::loadTensor(ds.key);
        tensors.addRow(
            {ds.key, ds.name,
             std::to_string(t.dimI()) + "x" + std::to_string(t.dimJ()) +
                 "x" + std::to_string(t.dimK()),
             std::to_string(t.nnz()), Table::num(ds.scale, 0) + "x"});
    }
    bench::emitTable(tensors);
    return 0;
}
