/**
 * @file
 * Figure 7 (+ §6.3.1 GRAMER text): SparseCore speedup over FlexMiner
 * and TrieJax for TC, TM, TT, T, 4C, 5C on E, F, W, M, Y, and the
 * GRAMER comparison. Fair-comparison configuration: one SU vs one PE.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "backend/cpu_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "baselines/flexminer.hh"
#include "baselines/gramer.hh"
#include "baselines/triejax.hh"
#include "bench_util.hh"
#include "gpm/isomorphism.hh"
#include "trace/replay.hh"

int
main()
{
    using namespace sc;
    using gpm::GpmApp;

    arch::SparseCoreConfig config;
    config.numSus = 1; // §6.3.1: one computation unit everywhere
    bench::printHeader("Figure 7",
                       "SparseCore vs FlexMiner / TrieJax / GRAMER "
                       "(1 SU vs 1 PE)",
                       config);
    bench::BenchReport report("fig07");

    for (const GpmApp app : gpm::figureSevenApps()) {
        const auto plans = gpm::gpmAppPlans(app);
        const unsigned redundancy = static_cast<unsigned>(
            gpm::automorphisms(plans.front().pattern).size());
        // TrieJax only supports edge-induced (clique) patterns
        // (§6.3.1): T, 4C, 5C.
        const bool triejax_supported =
            app == GpmApp::T || app == GpmApp::C4 || app == GpmApp::C5;

        const auto keys = graph::mediumGraphKeys();
        using Row = std::vector<std::string>;
        const auto rows = bench::runPoints<Row>(
            keys.size(), [&](std::size_t p) {
                const std::string &key = keys[p];
                const graph::CsrGraph &g = graph::loadGraph(key);
                const unsigned stride = bench::autoStride(g, app);
                const auto artifacts =
                    bench::gpmArtifacts(app, g, stride);

                backend::SparseCoreBackend sc_be(config);
                const Cycles sc_cycles =
                    bench::replayArtifacts(artifacts, sc_be).cycles;

                baselines::FlexMinerBackend fm;
                const Cycles fm_cycles =
                    bench::replayArtifacts(artifacts, fm).cycles;

                std::string tj_cell = "n/a (vertex-induced)";
                if (triejax_supported) {
                    baselines::TrieJaxBackend tj(redundancy,
                                                 g.numEdgeSlots());
                    const Cycles tj_cycles =
                        bench::replayArtifacts(artifacts, tj).cycles;
                    tj_cell = Table::speedup(
                        static_cast<double>(tj_cycles) /
                        static_cast<double>(sc_cycles), 1);
                }
                return Row{
                    key + (stride > 1 ? "*" : ""),
                    std::to_string(sc_cycles),
                    Table::speedup(static_cast<double>(fm_cycles) /
                                   static_cast<double>(sc_cycles)),
                    tj_cell};
            });
        Table table({"graph", "sc cycles", "vs flexminer",
                     "vs triejax"});
        for (const Row &row : rows)
            table.addRow(row);
        report.emit(gpm::gpmAppName(app), table);
    }

    // GRAMER (§6.3.1 text: avg 40.1x, up to 181.8x vs SparseCore;
    // slower than the CPU baseline).
    const auto gramer_keys = graph::mediumGraphKeys();
    using Row = std::vector<std::string>;
    const auto gramer_rows = bench::runPoints<Row>(
        gramer_keys.size(), [&](std::size_t p) {
            const std::string &key = gramer_keys[p];
            const graph::CsrGraph &g = graph::loadGraph(key);
            const unsigned stride =
                bench::autoStride(g, gpm::GpmApp::TM);
            const auto artifacts =
                bench::gpmArtifacts(gpm::GpmApp::TM, g, stride);

            backend::SparseCoreBackend sc_be(config);
            const Cycles sc_cycles =
                bench::replayArtifacts(artifacts, sc_be).cycles;

            backend::CpuBackend cpu;
            const Cycles cpu_cycles =
                bench::replayArtifacts(artifacts, cpu).cycles;

            // GRAMER explores the whole graph; scale to the sampled
            // fraction for a like-for-like ratio.
            const auto gr = baselines::estimateGramer(g, 3);
            const double scaled =
                static_cast<double>(gr.cycles) / stride;
            return Row{
                key + (stride > 1 ? "*" : ""),
                std::to_string(static_cast<std::uint64_t>(scaled)),
                Table::speedup(
                    scaled / static_cast<double>(sc_cycles), 1),
                Table::speedup(
                    scaled / static_cast<double>(cpu_cycles), 1)};
        });
    Table gt({"graph", "gramer cycles", "vs sparsecore(TM)",
              "vs cpu(TM)"});
    for (const Row &row : gramer_rows)
        gt.addRow(row);
    report.emit("GRAMER (pattern-oblivious, size-3 mining)", gt);
    std::printf("(* = root-sampled; TrieJax redundancy = |Aut|: "
                "6/24/120 as §6.3.1)\n");
    return 0;
}
