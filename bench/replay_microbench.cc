/**
 * @file
 * Trace-replay microbenchmark: host wall clock of the per-event
 * virtual walker (SC_REPLAY=event) versus the compiled-bytecode
 * devirtualized loops (SC_REPLAY=bytecode) on fig07-class GPM traces,
 * for every replay substrate. Simulated cycles are engine-invariant
 * by construction (tests/trace_bytecode_test.cc pins bit-identity);
 * this bench measures the only thing the bytecode is allowed to move:
 * how fast the host re-walks a captured trace, and how quickly the
 * one-time compile amortizes.
 *
 * Writes BENCH_replay.json. `--smoke` runs a seconds-long subset for
 * CI (scripts/check.sh), which also gates the cycle checksums.
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "backend/cpu_backend.hh"
#include "backend/functional_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "bench_util.hh"
#include "common/table.hh"
#include "graph/generators.hh"
#include "gpm/apps.hh"
#include "trace/compile.hh"
#include "trace/replay.hh"

using namespace sc;

namespace {

/** Replays/second of one engine on one backend family. Runs whole
 *  replays until min_seconds elapses (at least twice), so short
 *  traces are averaged over many passes. */
template <typename MakeBackend>
double
measureReplays(const trace::Trace &tr,
               const trace::BytecodeProgram *bc, MakeBackend make,
               double min_seconds, Cycles *cycles)
{
    std::size_t reps = 0;
    double seconds = 0;
    const bench::WallTimer timer;
    do {
        auto backend = make();
        const auto r =
            bc ? trace::replayCompiled(*bc, *backend, false)
               : trace::replay(tr, *backend, false,
                               trace::ReplayMode::Event);
        *cycles = r.cycles;
        ++reps;
    } while ((seconds = timer.seconds()) < min_seconds || reps < 2);
    return static_cast<double>(reps) / seconds;
}

struct BackendSpec
{
    const char *name;
    std::unique_ptr<backend::ExecBackend> (*make)();
};

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    const double min_seconds = smoke ? 0.05 : 0.5;
    std::printf("==== replay microbench: event walker vs compiled "
                "bytecode ====\n");
    std::printf("host wall clock only; cycles are checksummed across "
                "engines (SC_REPLAY / RunOptions::replayMode select "
                "the same paths)\n\n");

    // Fig. 7-class workload: power-law graphs, the paper's headline
    // app set. The smoke graph keeps every leg under a second; the
    // full graph is sized so the clique apps stay in the
    // hundreds-of-thousands-of-events range (power-law clique
    // enumeration grows explosively past this).
    const auto g =
        smoke ? graph::generateChungLu(600, 9'000, 120, 2.2, 42,
                                       "power-law")
              : graph::generateChungLu(1500, 24'000, 250, 2.1, 42,
                                       "power-law");
    const std::vector<gpm::GpmApp> apps =
        smoke ? std::vector<gpm::GpmApp>{gpm::GpmApp::T,
                                         gpm::GpmApp::C4}
              : std::vector<gpm::GpmApp>{gpm::GpmApp::T,
                                         gpm::GpmApp::TC,
                                         gpm::GpmApp::TT,
                                         gpm::GpmApp::C4,
                                         gpm::GpmApp::C5};

    static const arch::SparseCoreConfig config;
    const BackendSpec backends[] = {
        {"functional",
         [] {
             return std::unique_ptr<backend::ExecBackend>(
                 std::make_unique<backend::FunctionalBackend>());
         }},
        {"cpu",
         [] {
             return std::unique_ptr<backend::ExecBackend>(
                 std::make_unique<backend::CpuBackend>(config.core,
                                                       config.mem));
         }},
        {"sparsecore",
         [] {
             return std::unique_ptr<backend::ExecBackend>(
                 std::make_unique<backend::SparseCoreBackend>(
                     config));
         }},
    };

    bench::BenchReport report("replay");
    Table table({"app", "backend", "events", "event replays/s",
                 "bytecode replays/s", "speedup"});
    Table compile({"app", "events", "instructions", "event bytes",
                   "code bytes", "density", "compile ms",
                   "amortized after N replays"});

    bool ok = true;
    double best_speedup = 0;
    for (const gpm::GpmApp app : apps) {
        const trace::Trace tr =
            bench::captureGpmTrace(g, gpm::gpmAppPlans(app), 1);

        // Steady-state compile cost: the very first compile in a
        // process also pays one-time allocator/page warm-up, which a
        // sweep pays once across all its (app, dataset) pairs — so
        // warm up with a throwaway compile, then time.
        { const auto warmup = trace::compileTrace(tr); (void)warmup; }
        const bench::WallTimer compile_timer;
        const trace::BytecodeProgram bc = trace::compileTrace(tr);
        const double compile_seconds = compile_timer.seconds();

        // Amortization: replays after which compile time is repaid
        // by the per-replay saving on the cheapest (functional)
        // substrate — the worst case, since simulation-heavy
        // backends save the same decode time per replay.
        double amortize = 0;

        for (const BackendSpec &spec : backends) {
            Cycles event_cycles = 0, bytecode_cycles = 0;
            const double event_rate =
                measureReplays(tr, nullptr, spec.make, min_seconds,
                               &event_cycles);
            const double bytecode_rate =
                measureReplays(tr, &bc, spec.make, min_seconds,
                               &bytecode_cycles);
            if (event_cycles != bytecode_cycles) {
                std::fprintf(stderr,
                             "FAIL: %s %s cycles moved across replay "
                             "engines (%llu vs %llu)\n",
                             gpm::gpmAppName(app), spec.name,
                             static_cast<unsigned long long>(
                                 event_cycles),
                             static_cast<unsigned long long>(
                                 bytecode_cycles));
                ok = false;
            }
            const double speedup = bytecode_rate / event_rate;
            if (std::strcmp(spec.name, "functional") == 0) {
                best_speedup = std::max(best_speedup, speedup);
                const double saved =
                    1.0 / event_rate - 1.0 / bytecode_rate;
                amortize = saved > 0 ? compile_seconds / saved : -1;
            }
            table.addRow({gpm::gpmAppName(app), spec.name,
                          std::to_string(tr.numEvents()),
                          Table::num(event_rate, 1),
                          Table::num(bytecode_rate, 1),
                          Table::speedup(speedup)});
        }

        const std::size_t event_bytes =
            tr.numEvents() * sizeof(trace::Event);
        compile.addRow(
            {gpm::gpmAppName(app), std::to_string(tr.numEvents()),
             std::to_string(bc.numInstructions()),
             std::to_string(event_bytes),
             std::to_string(bc.codeBytes()),
             Table::num(static_cast<double>(event_bytes) /
                            static_cast<double>(bc.codeBytes()),
                        1) +
                 "x",
             Table::num(compile_seconds * 1e3, 2),
             amortize >= 0 ? Table::num(amortize, 2)
                           : std::string("never")});
    }

    report.emit("replay throughput by engine (wall clock)", table);
    report.emit("bytecode compile cost and density", compile);
    report.finish();

    if (!ok)
        return 1;
    // The tentpole claim: the functional-substrate replay — where
    // decode and dispatch ARE the loop — must be at least 5x faster
    // compiled. Gate it so the perf claim cannot silently rot.
    if (best_speedup < 5.0) {
        std::fprintf(stderr,
                     "FAIL: best functional replay speedup %.2fx < "
                     "5x target\n",
                     best_speedup);
        return 1;
    }
    std::printf("best functional replay speedup: %.1fx (>= 5x "
                "target)\n",
                best_speedup);
    return 0;
}
