/**
 * @file
 * Host set-op kernel microbenchmark: wall-clock throughput of every
 * registered kernel level (scalar / SSE / AVX2) on the three stream
 * ops, plus the speedup over the scalar reference. This measures the
 * HOST kernels only — simulated SparseCore cycles are independent of
 * the kernel level by construction (DESIGN.md §10), which
 * tests/kernel_table_test.cc enforces.
 *
 * `--smoke` runs a seconds-long subset for CI (scripts/check.sh).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "backend/functional_backend.hh"
#include "bench_util.hh"
#include "common/rng.hh"
#include "graph/generators.hh"
#include "gpm/apps.hh"
#include "streams/set_ops.hh"
#include "streams/setindex/policy.hh"
#include "streams/setindex/set_index.hh"
#include "streams/simd/kernel_table.hh"

using namespace sc;
using streams::KernelLevel;
using streams::KernelTable;
using streams::SetOpResult;
using streams::setindex::IndexPolicy;
using streams::setindex::ScopedIndexPolicyOverride;

namespace {

/** Sorted duplicate-free stream of n keys drawn below `universe`. */
std::vector<Key>
sortedStream(Rng &rng, std::size_t n, std::uint64_t universe)
{
    std::vector<Key> keys;
    keys.reserve(n + n / 4);
    while (keys.size() < n) {
        const std::size_t need = n - keys.size();
        for (std::size_t i = 0; i < need + need / 8 + 8; ++i)
            keys.push_back(static_cast<Key>(rng.below(universe)));
        std::sort(keys.begin(), keys.end());
        keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    }
    keys.resize(n);
    return keys;
}

struct OpSpec
{
    const char *name;
    SetOpResult (*run)(const KernelTable &, streams::KeySpan,
                       streams::KeySpan, std::vector<Key> *);
};

SetOpResult
runIntersect(const KernelTable &kt, streams::KeySpan a,
             streams::KeySpan b, std::vector<Key> *out)
{
    return kt.intersect(a, b, noBound, out);
}

SetOpResult
runSubtract(const KernelTable &kt, streams::KeySpan a,
            streams::KeySpan b, std::vector<Key> *out)
{
    return kt.subtract(a, b, noBound, out);
}

SetOpResult
runMerge(const KernelTable &kt, streams::KeySpan a, streams::KeySpan b,
         std::vector<Key> *out)
{
    return kt.merge(a, b, out);
}

SetOpResult
runIntersectCount(const KernelTable &kt, streams::KeySpan a,
                  streams::KeySpan b, std::vector<Key> *)
{
    return kt.intersect(a, b, noBound, nullptr);
}

/** Median-free simple measurement: repeat the op over a ring of
 *  operand pairs until min_seconds elapses; report Melem/s over the
 *  total input elements consumed. */
double
measure(const KernelTable &kt, const OpSpec &op,
        const std::vector<std::vector<Key>> &as,
        const std::vector<std::vector<Key>> &bs, double min_seconds,
        std::uint64_t *checksum)
{
    std::vector<Key> out;
    out.reserve(as[0].size() + bs[0].size());
    std::uint64_t sum = 0, elems = 0;
    double seconds = 0;
    // One warm pass over the ring doubles as the checksum (a fixed
    // amount of work, so it is comparable across levels).
    for (std::size_t p = 0; p < as.size(); ++p) {
        out.clear();
        sum += op.run(kt, as[p], bs[p], &out).count;
    }
    *checksum = sum;
    std::uint64_t sink = 0;
    const bench::WallTimer total;
    while ((seconds = total.seconds()) < min_seconds) {
        for (std::size_t p = 0; p < as.size(); ++p) {
            out.clear();
            sink += op.run(kt, as[p], bs[p], &out).count;
            elems += as[p].size() + bs[p].size();
        }
    }
    if (sink == 0x5eedc0de)
        std::printf("\n"); // keep the timed calls observable
    return static_cast<double>(elems) / seconds / 1e6;
}

// ---------------- hybrid set-index sweep ----------------

/**
 * A synthetic CSR graph holding `pairs` (A, B) operand lists as the
 * adjacency lists of its first 2*pairs vertices, with all list keys
 * drawn from the remaining `universe` vertices. After degree
 * relabeling the key vertices (all degree 0, ties broken by ascending
 * id) keep their relative order, so each list's rank range spans the
 * whole universe and its bitmap density is len/universe — which makes
 * `universe` a direct density dial for the sweep.
 */
graph::CsrGraph
makeOperandGraph(Rng &rng, std::size_t universe, std::size_t la,
                 std::size_t lb, std::size_t pairs)
{
    const std::size_t owners = 2 * pairs;
    std::vector<std::uint64_t> offsets = {0};
    std::vector<Key> edges;
    for (std::size_t p = 0; p < pairs; ++p) {
        for (const std::size_t len : {la, lb}) {
            auto keys = sortedStream(rng, len, universe);
            for (Key &k : keys)
                k += static_cast<Key>(owners);
            edges.insert(edges.end(), keys.begin(), keys.end());
            offsets.push_back(edges.size());
        }
    }
    for (std::size_t v = owners; v < owners + universe; ++v)
        offsets.push_back(edges.size());
    return graph::CsrGraph(std::move(offsets), std::move(edges),
                           "operands");
}

/** Counting-intersect throughput of graph-resident operand pairs
 *  under one index policy (runSetOp dispatch picks the format). */
double
measureIndexed(IndexPolicy policy, const graph::CsrGraph &g,
               std::size_t pairs, double min_seconds,
               std::uint64_t *checksum)
{
    ScopedIndexPolicyOverride forced(policy);
    std::uint64_t sum = 0, elems = 0;
    for (std::size_t p = 0; p < pairs; ++p)
        sum += streams::runSetOpCount(streams::SetOpKind::Intersect,
                                      g.neighbors(2 * p),
                                      g.neighbors(2 * p + 1))
                   .count;
    *checksum = sum;
    std::uint64_t sink = 0;
    double seconds = 0;
    const bench::WallTimer total;
    while ((seconds = total.seconds()) < min_seconds) {
        for (std::size_t p = 0; p < pairs; ++p) {
            const auto a = g.neighbors(2 * p);
            const auto b = g.neighbors(2 * p + 1);
            sink += streams::runSetOpCount(streams::SetOpKind::Intersect,
                                           a, b)
                        .count;
            elems += a.size() + b.size();
        }
    }
    if (sink == 0x5eedc0de)
        std::printf("\n");
    return static_cast<double>(elems) / seconds / 1e6;
}

/** Edge-iterator triangle count: one unbounded counting intersect of
 *  full adjacency lists per undirected edge (counts each triangle
 *  three times; only the policy-invariance of the total matters
 *  here). */
std::uint64_t
tcEdgeCount(const graph::CsrGraph &g)
{
    std::uint64_t total = 0;
    for (VertexId u = 0; u < g.numVertices(); ++u)
        for (const Key v : g.neighbors(u)) {
            if (v <= u)
                continue;
            total += streams::runSetOpCount(streams::SetOpKind::Intersect,
                                            g.neighbors(u),
                                            g.neighbors(v), noBound)
                         .count;
        }
    return total;
}

/** Density x skew sweep + dense-neighborhood workload leg for the
 *  hybrid bitmap/array set index; writes BENCH_setindex.json. */
int
runSetIndexBench(bool smoke)
{
    bench::BenchReport report("setindex");
    const std::size_t la = smoke ? 1024 : 4096;
    const std::size_t pairs = smoke ? 4 : 16;
    const double min_seconds = smoke ? 0.02 : 0.2;
    // Densities bracketing the build thresholds: the auto tier needs
    // rank density >= 1/64 (1 word per key), the forced tier >= 1/256
    // (4 words per key); below that no bitmap exists and every policy
    // collapses to the array kernels.
    const std::size_t inv_densities[] = {4, 16, 64, 256, 1024};
    const std::size_t skews[] = {1, 8, 64};

    std::printf("==== hybrid set-index sweep: density x skew ====\n");
    std::printf("policy rates are counting-intersect dispatch through "
                "runSetOp (SC_FORCE_SETINDEX / RunOptions.indexPolicy "
                "select the same paths)\n\n");
    Table table({"1/density", "skew", "|A|", "|B|", "array Melem/s",
                 "auto Melem/s", "bitmap Melem/s", "auto/array",
                 "bitmap/array"});
    Table crossover({"skew", "bitmap wins at 1/density <="});
    Rng rng(0x5e71d);
    for (const std::size_t skew : skews) {
        std::size_t best_inv_density = 0;
        for (const std::size_t inv_density : inv_densities) {
            const std::size_t lb = std::max<std::size_t>(la / skew, 8);
            const auto g = makeOperandGraph(rng, la * inv_density, la,
                                            lb, pairs);
            double rates[3] = {0, 0, 0};
            std::uint64_t sums[3] = {0, 0, 0};
            const IndexPolicy policies[] = {IndexPolicy::ArrayOnly,
                                            IndexPolicy::Auto,
                                            IndexPolicy::Bitmap};
            for (int i = 0; i < 3; ++i)
                rates[i] = measureIndexed(policies[i], g, pairs,
                                          min_seconds, &sums[i]);
            if (sums[1] != sums[0] || sums[2] != sums[0]) {
                std::fprintf(stderr,
                             "FAIL: setindex checksum mismatch at "
                             "1/density=%zu skew=%zu\n",
                             inv_density, skew);
                return 1;
            }
            if (rates[2] > rates[0])
                best_inv_density = inv_density;
            table.addRow({std::to_string(inv_density),
                          std::to_string(skew), std::to_string(la),
                          std::to_string(lb), Table::num(rates[0], 1),
                          Table::num(rates[1], 1),
                          Table::num(rates[2], 1),
                          Table::speedup(rates[1] / rates[0]),
                          Table::speedup(rates[2] / rates[0])});
        }
        crossover.addRow({std::to_string(skew),
                          best_inv_density
                              ? std::to_string(best_inv_density)
                              : std::string("never")});
    }
    report.emit("hybrid format sweep (counting intersect)", table);
    report.emit("bitmap-over-array crossover density", crossover);

    // Workload leg: clique mining over a power-law graph whose hub
    // neighborhoods are long and (after degree relabeling) dense in
    // rank space — the regime the index was built for. Functional
    // enumeration wall clock only; embeddings must not move.
    const auto g = smoke
                       ? graph::generateChungLu(1200, 30'000, 400, 2.1,
                                                42, "power-law")
                       : graph::generateChungLu(4000, 160'000, 1600,
                                                2.1, 42, "power-law");
    Table workload({"app", "graph", "policy", "host s", "embeddings",
                    "speedup vs array"});
    for (const auto app : {gpm::GpmApp::T, gpm::GpmApp::C4}) {
        double array_seconds = 0;
        std::uint64_t emb_ref = 0;
        const IndexPolicy policies[] = {IndexPolicy::ArrayOnly,
                                        IndexPolicy::Auto};
        for (const IndexPolicy policy : policies) {
            ScopedIndexPolicyOverride forced(policy);
            backend::FunctionalBackend fb;
            const bench::WallTimer timer;
            const auto res = gpm::runGpmApp(app, g, fb);
            const double seconds = timer.seconds();
            if (policy == IndexPolicy::ArrayOnly) {
                array_seconds = seconds;
                emb_ref = res.embeddings;
            } else if (res.embeddings != emb_ref) {
                std::fprintf(stderr,
                             "FAIL: %s embeddings moved under %s\n",
                             gpm::gpmAppName(app),
                             indexPolicyName(policy));
                return 1;
            }
            workload.addRow(
                {gpm::gpmAppName(app), g.name(),
                 indexPolicyName(policy), Table::num(seconds, 3),
                 std::to_string(res.embeddings),
                 Table::speedup(array_seconds / seconds)});
        }
    }
    report.emit("dense-neighborhood workload (functional wall clock)",
                workload);

    // Clique-mining leg: edge-iterator triangle counting — for every
    // edge (u, v) an UNBOUNDED counting intersect of the two full
    // adjacency lists. On a dense power-law graph the degree-ordered
    // relabel packs those lists into few bitmap words, so this leg
    // runs almost entirely on the bitmap x bitmap word-AND kernel —
    // the headline speedup of the hybrid index. (The executor leg
    // above bounds every op for symmetry breaking, which keeps it on
    // the array/probe paths; it is the no-regression floor, this is
    // the win.)
    const auto cg =
        smoke ? graph::generateChungLu(750, 75'000, 700, 1.9, 42,
                                       "power-law-dense")
              : graph::generateChungLu(3000, 900'000, 2800, 1.9, 42,
                                       "power-law-dense");
    Table clique({"app", "graph", "policy", "host s", "triangles",
                  "speedup vs array"});
    {
        double array_seconds = 0;
        std::uint64_t tri_ref = 0;
        const IndexPolicy policies[] = {IndexPolicy::ArrayOnly,
                                        IndexPolicy::Auto};
        for (const IndexPolicy policy : policies) {
            ScopedIndexPolicyOverride forced(policy);
            const bench::WallTimer timer;
            const std::uint64_t tri = tcEdgeCount(cg);
            const double seconds = timer.seconds();
            if (policy == IndexPolicy::ArrayOnly) {
                array_seconds = seconds;
                tri_ref = tri;
            } else if (tri != tri_ref) {
                std::fprintf(stderr,
                             "FAIL: tc-edge count moved under %s\n",
                             indexPolicyName(policy));
                return 1;
            }
            clique.addRow({"tc-edge", cg.name(),
                           indexPolicyName(policy),
                           Table::num(seconds, 3), std::to_string(tri),
                           Table::speedup(array_seconds / seconds)});
        }
    }
    report.emit("clique mining, dense neighborhoods (word-AND path)",
                clique);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    const auto levels = streams::availableKernelLevels();
    std::printf("==== kernel microbench: host set-op kernels ====\n");
    std::printf("levels:");
    for (const KernelLevel level : levels)
        std::printf(" %s", streams::kernelLevelName(level));
    std::printf("  (SC_FORCE_KERNEL overrides the process default; "
                "this bench measures each level explicitly)\n\n");

    const std::vector<std::size_t> lengths =
        smoke ? std::vector<std::size_t>{4096}
              : std::vector<std::size_t>{256, 1024, 4096, 16384, 65536};
    const double min_seconds = smoke ? 0.02 : 0.2;
    const std::size_t ring = smoke ? 8 : 32;

    const OpSpec ops[] = {{"intersect", runIntersect},
                          {"intersect.C", runIntersectCount},
                          {"subtract", runSubtract},
                          {"merge", runMerge}};

    bench::BenchReport report("kernels");
    Table table({"op", "n", "kernel", "Melem/s", "speedup"});
    Rng rng(0xbe7c4);
    for (const std::size_t n : lengths) {
        // Universe 4n: ~25% hit rate, the dense-ish regime GPM streams
        // live in. Fresh operands per length, shared across levels.
        std::vector<std::vector<Key>> as, bs;
        for (std::size_t p = 0; p < ring; ++p) {
            as.push_back(sortedStream(rng, n, 4 * n));
            bs.push_back(sortedStream(rng, n, 4 * n));
        }
        for (const OpSpec &op : ops) {
            double scalar_rate = 0;
            std::uint64_t scalar_sum = 0;
            for (const KernelLevel level : levels) {
                std::uint64_t sum = 0;
                const double rate =
                    measure(streams::kernelsFor(level), op, as, bs,
                            min_seconds, &sum);
                if (level == KernelLevel::Scalar) {
                    scalar_rate = rate;
                    scalar_sum = sum;
                } else if (sum != scalar_sum) {
                    std::fprintf(stderr,
                                 "FAIL: %s n=%zu %s checksum "
                                 "mismatch\n",
                                 op.name, n,
                                 streams::kernelLevelName(level));
                    return 1;
                }
                table.addRow({op.name, std::to_string(n),
                              streams::kernelLevelName(level),
                              Table::num(rate, 1),
                              Table::speedup(rate / scalar_rate)});
            }
        }
    }
    report.emit("set-op kernel throughput (wall clock)", table);
    report.finish();
    return runSetIndexBench(smoke);
}
