/**
 * @file
 * Host set-op kernel microbenchmark: wall-clock throughput of every
 * registered kernel level (scalar / SSE / AVX2) on the three stream
 * ops, plus the speedup over the scalar reference. This measures the
 * HOST kernels only — simulated SparseCore cycles are independent of
 * the kernel level by construction (DESIGN.md §10), which
 * tests/kernel_table_test.cc enforces.
 *
 * `--smoke` runs a seconds-long subset for CI (scripts/check.sh).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "streams/set_ops.hh"
#include "streams/simd/kernel_table.hh"

using namespace sc;
using streams::KernelLevel;
using streams::KernelTable;
using streams::SetOpResult;

namespace {

/** Sorted duplicate-free stream of n keys drawn below `universe`. */
std::vector<Key>
sortedStream(Rng &rng, std::size_t n, std::uint64_t universe)
{
    std::vector<Key> keys;
    keys.reserve(n + n / 4);
    while (keys.size() < n) {
        const std::size_t need = n - keys.size();
        for (std::size_t i = 0; i < need + need / 8 + 8; ++i)
            keys.push_back(static_cast<Key>(rng.below(universe)));
        std::sort(keys.begin(), keys.end());
        keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    }
    keys.resize(n);
    return keys;
}

struct OpSpec
{
    const char *name;
    SetOpResult (*run)(const KernelTable &, streams::KeySpan,
                       streams::KeySpan, std::vector<Key> *);
};

SetOpResult
runIntersect(const KernelTable &kt, streams::KeySpan a,
             streams::KeySpan b, std::vector<Key> *out)
{
    return kt.intersect(a, b, noBound, out);
}

SetOpResult
runSubtract(const KernelTable &kt, streams::KeySpan a,
            streams::KeySpan b, std::vector<Key> *out)
{
    return kt.subtract(a, b, noBound, out);
}

SetOpResult
runMerge(const KernelTable &kt, streams::KeySpan a, streams::KeySpan b,
         std::vector<Key> *out)
{
    return kt.merge(a, b, out);
}

SetOpResult
runIntersectCount(const KernelTable &kt, streams::KeySpan a,
                  streams::KeySpan b, std::vector<Key> *)
{
    return kt.intersect(a, b, noBound, nullptr);
}

/** Median-free simple measurement: repeat the op over a ring of
 *  operand pairs until min_seconds elapses; report Melem/s over the
 *  total input elements consumed. */
double
measure(const KernelTable &kt, const OpSpec &op,
        const std::vector<std::vector<Key>> &as,
        const std::vector<std::vector<Key>> &bs, double min_seconds,
        std::uint64_t *checksum)
{
    std::vector<Key> out;
    out.reserve(as[0].size() + bs[0].size());
    std::uint64_t sum = 0, elems = 0;
    double seconds = 0;
    // One warm pass over the ring doubles as the checksum (a fixed
    // amount of work, so it is comparable across levels).
    for (std::size_t p = 0; p < as.size(); ++p) {
        out.clear();
        sum += op.run(kt, as[p], bs[p], &out).count;
    }
    *checksum = sum;
    std::uint64_t sink = 0;
    const bench::WallTimer total;
    while ((seconds = total.seconds()) < min_seconds) {
        for (std::size_t p = 0; p < as.size(); ++p) {
            out.clear();
            sink += op.run(kt, as[p], bs[p], &out).count;
            elems += as[p].size() + bs[p].size();
        }
    }
    if (sink == 0x5eedc0de)
        std::printf("\n"); // keep the timed calls observable
    return static_cast<double>(elems) / seconds / 1e6;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    const auto levels = streams::availableKernelLevels();
    std::printf("==== kernel microbench: host set-op kernels ====\n");
    std::printf("levels:");
    for (const KernelLevel level : levels)
        std::printf(" %s", streams::kernelLevelName(level));
    std::printf("  (SC_FORCE_KERNEL overrides the process default; "
                "this bench measures each level explicitly)\n\n");

    const std::vector<std::size_t> lengths =
        smoke ? std::vector<std::size_t>{4096}
              : std::vector<std::size_t>{256, 1024, 4096, 16384, 65536};
    const double min_seconds = smoke ? 0.02 : 0.2;
    const std::size_t ring = smoke ? 8 : 32;

    const OpSpec ops[] = {{"intersect", runIntersect},
                          {"intersect.C", runIntersectCount},
                          {"subtract", runSubtract},
                          {"merge", runMerge}};

    bench::BenchReport report("kernels");
    Table table({"op", "n", "kernel", "Melem/s", "speedup"});
    Rng rng(0xbe7c4);
    for (const std::size_t n : lengths) {
        // Universe 4n: ~25% hit rate, the dense-ish regime GPM streams
        // live in. Fresh operands per length, shared across levels.
        std::vector<std::vector<Key>> as, bs;
        for (std::size_t p = 0; p < ring; ++p) {
            as.push_back(sortedStream(rng, n, 4 * n));
            bs.push_back(sortedStream(rng, n, 4 * n));
        }
        for (const OpSpec &op : ops) {
            double scalar_rate = 0;
            std::uint64_t scalar_sum = 0;
            for (const KernelLevel level : levels) {
                std::uint64_t sum = 0;
                const double rate =
                    measure(streams::kernelsFor(level), op, as, bs,
                            min_seconds, &sum);
                if (level == KernelLevel::Scalar) {
                    scalar_rate = rate;
                    scalar_sum = sum;
                } else if (sum != scalar_sum) {
                    std::fprintf(stderr,
                                 "FAIL: %s n=%zu %s checksum "
                                 "mismatch\n",
                                 op.name, n,
                                 streams::kernelLevelName(level));
                    return 1;
                }
                table.addRow({op.name, std::to_string(n),
                              streams::kernelLevelName(level),
                              Table::num(rate, 1),
                              Table::speedup(rate / scalar_rate)});
            }
        }
    }
    report.emit("set-op kernel throughput (wall clock)", table);
    return 0;
}
