/**
 * @file
 * Shared helpers for the benchmark binaries: configuration banner,
 * dataset sampling policy, table emission, host wall-clock timing and
 * host-parallel sweep execution. Every bench prints the rows/series
 * of one paper figure or table; independent (dataset x config) points
 * run concurrently on the host pool and are emitted in a fixed order.
 */

#ifndef SPARSECORE_BENCH_BENCH_UTIL_HH
#define SPARSECORE_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "arch/config.hh"
#include "common/parallel_for.hh"
#include "common/table.hh"
#include "graph/datasets.hh"
#include "gpm/apps.hh"
#include "trace/trace.hh"

namespace sc::bench {

/** Print the figure banner + Table-2 configuration line. */
void printHeader(const std::string &figure, const std::string &title,
                 const arch::SparseCoreConfig &config);

/**
 * Deterministic self-tuning root sampling. A probe run on the
 * timeless functional backend at a coarse stride measures the
 * (app, graph) cell's set-operation work; the returned stride caps
 * the full run near `target_elements`. The same stride is applied to
 * every substrate, so reported speedups (cycle ratios) stay
 * meaningful. See EXPERIMENTS.md.
 */
unsigned autoStride(const graph::CsrGraph &g, gpm::GpmApp app,
                    std::uint64_t target_elements = 16'000'000);

/** Print the table plus a CSV block for downstream plotting. */
void emitTable(const Table &table);

/**
 * Capture one (plans, graph, stride) GPM run's event trace. Sweep
 * ladders (substrates, SU counts, bandwidths) replay the returned
 * trace instead of re-executing the functional enumeration per
 * configuration — the expensive part of a sweep point is paid once.
 */
trace::Trace captureGpmTrace(const graph::CsrGraph &g,
                             const std::vector<gpm::MiningPlan> &plans,
                             unsigned root_stride,
                             std::uint64_t *embeddings = nullptr);

/** steady_clock stopwatch for host wall-clock reporting. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Run n independent sweep points concurrently on the global host
 * pool; results come back in point order, so the emitted tables are
 * byte-identical to a sequential sweep. T must be
 * default-constructible.
 */
template <typename T, typename Fn>
std::vector<T>
runPoints(std::size_t n, Fn &&fn)
{
    return parallelMap<T>(ThreadPool::global(), n,
                          std::forward<Fn>(fn));
}

/**
 * Per-bench report: collects the figure's tables, then finish() (or
 * the destructor) prints the host wall clock and writes
 * BENCH_<name>.json — simulated cycles alongside host seconds, so
 * harness speed is tracked across PRs.
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string name);
    ~BenchReport();

    /** emitTable() + record the table for the JSON dump. */
    void emit(const std::string &title, const Table &table);

    /** Print wall clock + thread count, write BENCH_<name>.json. */
    void finish();

  private:
    std::string name_;
    WallTimer timer_;
    std::vector<std::pair<std::string, std::string>> tables_;
    bool finished_ = false;
};

} // namespace sc::bench

#endif // SPARSECORE_BENCH_BENCH_UTIL_HH
