/**
 * @file
 * Shared helpers for the benchmark binaries: configuration banner,
 * dataset sampling policy, and table emission. Every bench prints the
 * rows/series of one paper figure or table.
 */

#ifndef SPARSECORE_BENCH_BENCH_UTIL_HH
#define SPARSECORE_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <string>

#include "arch/config.hh"
#include "common/table.hh"
#include "graph/datasets.hh"
#include "gpm/apps.hh"

namespace sc::bench {

/** Print the figure banner + Table-2 configuration line. */
void printHeader(const std::string &figure, const std::string &title,
                 const arch::SparseCoreConfig &config);

/**
 * Deterministic self-tuning root sampling. A probe run on the
 * timeless functional backend at a coarse stride measures the
 * (app, graph) cell's set-operation work; the returned stride caps
 * the full run near `target_elements`. The same stride is applied to
 * every substrate, so reported speedups (cycle ratios) stay
 * meaningful. See EXPERIMENTS.md.
 */
unsigned autoStride(const graph::CsrGraph &g, gpm::GpmApp app,
                    std::uint64_t target_elements = 16'000'000);

/** Print the table plus a CSV block for downstream plotting. */
void emitTable(const Table &table);

} // namespace sc::bench

#endif // SPARSECORE_BENCH_BENCH_UTIL_HH
