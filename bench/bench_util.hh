/**
 * @file
 * Shared helpers for the benchmark binaries: configuration banner,
 * dataset sampling policy, table emission, host wall-clock timing and
 * host-parallel sweep execution. Every bench prints the rows/series
 * of one paper figure or table; independent (dataset x config) points
 * run concurrently on the host pool and are emitted in a fixed order.
 */

#ifndef SPARSECORE_BENCH_BENCH_UTIL_HH
#define SPARSECORE_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/artifact_store.hh"
#include "arch/config.hh"
#include "common/json.hh"
#include "common/parallel_for.hh"
#include "common/table.hh"
#include "graph/datasets.hh"
#include "gpm/apps.hh"
#include "trace/replay.hh"
#include "trace/trace.hh"

namespace sc::bench {

/** Print the figure banner + Table-2 configuration line. */
void printHeader(const std::string &figure, const std::string &title,
                 const arch::SparseCoreConfig &config);

/**
 * Deterministic self-tuning root sampling. A probe run on the
 * timeless functional backend at a coarse stride measures the
 * (app, graph) cell's set-operation work; the returned stride caps
 * the full run near `target_elements`. The same stride is applied to
 * every substrate, so reported speedups (cycle ratios) stay
 * meaningful. SC_BENCH_SMOKE=1 shrinks the target 64x for CI-speed
 * sweeps (the check.sh cold/warm leg). See EXPERIMENTS.md.
 */
unsigned autoStride(const graph::CsrGraph &g, gpm::GpmApp app,
                    std::uint64_t target_elements = 16'000'000);

/** SC_BENCH_SMOKE=1: tiny sweep points for CI. Read once. */
bool benchSmoke();

/**
 * Directory BENCH_*.json reports land in: SC_BENCH_DIR, default
 * "bench_results" under the current directory. Created on first use —
 * every bench binary writes through this one path, so runs no longer
 * scatter JSON files across whatever directory they started in.
 */
std::string benchResultsDir();

/** Print the table plus a CSV block for downstream plotting. */
void emitTable(const Table &table);

/**
 * Capture one (plans, graph, stride) GPM run's event trace. Sweep
 * ladders (substrates, SU counts, bandwidths) replay the returned
 * trace instead of re-executing the functional enumeration per
 * configuration — the expensive part of a sweep point is paid once.
 */
trace::Trace captureGpmTrace(const graph::CsrGraph &g,
                             const std::vector<gpm::MiningPlan> &plans,
                             unsigned root_stride,
                             std::uint64_t *embeddings = nullptr);

/**
 * One (app, graph, stride) point's shareable artifacts, fetched from
 * the process-wide ArtifactStore: the captured trace with its
 * functional result, addressed by content key. Sweep drivers fetch
 * this once per point and hand it to replayArtifacts() per ladder
 * configuration — the capture and the trace->bytecode compile then
 * happen exactly once per (app, dataset) for the whole binary, and
 * are shared with every other driver in the same process. With
 * SC_ARTIFACT_CACHE=off the key stays empty and the point owns a
 * private capture (the legacy behavior); cycles are bit-identical
 * either way.
 */
struct GpmArtifacts
{
    /** Store key; empty when the store is bypassed. */
    std::string key;
    std::shared_ptr<const api::ArtifactStore::CachedTrace> cached;
    std::uint64_t embeddings = 0;

    const trace::Trace &trace() const { return cached->trace; }
};

/** Fetch (or capture) the artifacts for one GPM sweep point. */
GpmArtifacts gpmArtifacts(gpm::GpmApp app, const graph::CsrGraph &g,
                          unsigned root_stride);

/**
 * Replay one sweep point onto `be`. In Bytecode mode (the default)
 * the compiled program comes out of the store — compiled on the
 * first ladder configuration, a hit on every later one. Issues the
 * same backend call sequence as trace::replay, so cycles never
 * depend on the store.
 */
trace::ReplayResult replayArtifacts(const GpmArtifacts &artifacts,
                                    backend::ExecBackend &be);

/** steady_clock stopwatch for host wall-clock reporting. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Run n independent sweep points concurrently on the global host
 * pool; results come back in point order, so the emitted tables are
 * byte-identical to a sequential sweep. T must be
 * default-constructible.
 */
template <typename T, typename Fn>
std::vector<T>
runPoints(std::size_t n, Fn &&fn)
{
    return parallelMap<T>(ThreadPool::global(), n,
                          std::forward<Fn>(fn));
}

/**
 * Per-bench report: collects the figure's tables, then finish() (or
 * the destructor) prints the host wall clock and writes
 * BENCH_<name>.json — simulated cycles alongside host seconds, so
 * harness speed is tracked across PRs.
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string name);
    ~BenchReport();

    /** emitTable() + record the table for the JSON dump. */
    void emit(const std::string &title, const Table &table);

    /** Attach an extra top-level member to BENCH_<name>.json (e.g.
     *  queue stats); later values win on duplicate keys. */
    void setExtra(const std::string &key, JsonValue value);

    /** Print wall clock + thread count, write BENCH_<name>.json. */
    void finish();

  private:
    std::string name_;
    WallTimer timer_;
    std::vector<std::pair<std::string, std::string>> tables_;
    std::vector<std::pair<std::string, JsonValue>> extras_;
    bool finished_ = false;
};

} // namespace sc::bench

#endif // SPARSECORE_BENCH_BENCH_UTIL_HH
