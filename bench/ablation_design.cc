/**
 * @file
 * Ablations of SparseCore's design choices (beyond the paper's own
 * SU-count and bandwidth sweeps): the SU parallel-comparison window,
 * the scratchpad, the nested-intersection translator, and the
 * software-side IEP optimization that demonstrates the architecture's
 * flexibility claim (§1). Each config ladder fetches the workload's
 * trace and compiled program from the ArtifactStore once and replays
 * them per configuration.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "backend/sparsecore_backend.hh"
#include "bench_util.hh"
#include "gpm/iep.hh"
#include "trace/replay.hh"

namespace {

sc::Cycles
replayOn(const sc::bench::GpmArtifacts &artifacts,
         const sc::arch::SparseCoreConfig &config)
{
    sc::backend::SparseCoreBackend be(config);
    return sc::bench::replayArtifacts(artifacts, be).cycles;
}

} // namespace

int
main()
{
    using namespace sc;
    using gpm::GpmApp;
    arch::SparseCoreConfig base;
    bench::printHeader("Ablations", "design-choice sensitivity", base);
    bench::BenchReport report("ablation_design");

    const graph::CsrGraph &w = graph::loadGraph("W");
    const graph::CsrGraph &e = graph::loadGraph("E");

    // T on W feeds three ladders (SU window, nested intersection,
    // translation buffer): captured once, replayed per config.
    const unsigned t_stride = bench::autoStride(w, GpmApp::T);
    const auto t_on_w = bench::gpmArtifacts(GpmApp::T, w, t_stride);

    // ---- 1. SU comparator window (Fig. 6 parallel comparison) ----
    {
        Table t({"window", "cycles", "vs window=1"});
        const std::vector<unsigned> windows = {1, 2, 4, 8, 16, 32, 64};
        const auto cycles = bench::runPoints<Cycles>(
            windows.size(), [&](std::size_t p) {
                arch::SparseCoreConfig c = base;
                c.suWindow = windows[p];
                return replayOn(t_on_w, c);
            });
        for (std::size_t p = 0; p < windows.size(); ++p)
            t.addRow({std::to_string(windows[p]),
                      std::to_string(cycles[p]),
                      Table::speedup(static_cast<double>(cycles[0]) /
                                     cycles[p])});
        report.emit("SU parallel-comparison window (T on W)", t);
    }

    // ---- 2. scratchpad (stream reuse, §4.2) ----
    {
        Table t({"scratchpad", "cycles"});
        const unsigned stride = bench::autoStride(e, GpmApp::TT);
        const auto tt_on_e =
            bench::gpmArtifacts(GpmApp::TT, e, stride);
        const std::vector<unsigned> sizes_kb = {0, 4, 16, 64};
        const auto cycles = bench::runPoints<Cycles>(
            sizes_kb.size(), [&](std::size_t p) {
                arch::SparseCoreConfig c = base;
                // ~off at 4 bytes
                c.scratchpadBytes =
                    sizes_kb[p] == 0 ? 4 : sizes_kb[p] * 1024;
                return replayOn(tt_on_e, c);
            });
        for (std::size_t p = 0; p < sizes_kb.size(); ++p)
            t.addRow({sizes_kb[p] == 0
                          ? "off"
                          : std::to_string(sizes_kb[p]) + " KB",
                      std::to_string(cycles[p])});
        report.emit("scratchpad (TT on E: reused outer operands)", t);
    }

    // ---- 3. nested intersection (§4.6) ----
    // One trace per app; the nested-off replay lowers each group to
    // the explicit per-element loop, so the ladder isolates the
    // S_NESTINTER instruction itself (same plan, same events).
    {
        Table t({"app", "explicit loop", "S_NESTINTER", "gain"});
        const std::vector<GpmApp> apps = {GpmApp::T, GpmApp::C4,
                                          GpmApp::C5};
        struct Pair
        {
            Cycles with = 0;
            Cycles without = 0;
        };
        const auto cycles = bench::runPoints<Pair>(
            apps.size(), [&](std::size_t p) {
                const unsigned stride = bench::autoStride(w, apps[p]);
                const auto tr =
                    bench::gpmArtifacts(apps[p], w, stride);
                arch::SparseCoreConfig off = base;
                off.nestedIntersection = false;
                return Pair{replayOn(tr, base), replayOn(tr, off)};
            });
        for (std::size_t p = 0; p < apps.size(); ++p)
            t.addRow({gpm::gpmAppName(apps[p]),
                      std::to_string(cycles[p].without),
                      std::to_string(cycles[p].with),
                      Table::speedup(
                          static_cast<double>(cycles[p].without) /
                          cycles[p].with)});
        report.emit("nested intersection (W)", t);
    }

    // ---- 4. translation buffer size (§4.6) ----
    {
        Table t({"entries", "cycles"});
        const std::vector<unsigned> entries = {2, 4, 8, 16, 32};
        const auto cycles = bench::runPoints<Cycles>(
            entries.size(), [&](std::size_t p) {
                arch::SparseCoreConfig c = base;
                c.translationBufferSize = entries[p];
                return replayOn(t_on_w, c);
            });
        for (std::size_t p = 0; p < entries.size(); ++p)
            t.addRow({std::to_string(entries[p]),
                      std::to_string(cycles[p])});
        report.emit(
            "nested-intersection translation buffer (T on W)", t);
    }

    // ---- 5. IEP in software (the flexibility claim, §1) ----
    {
        Table t({"graph", "direct plan", "IEP rewrite", "gain"});
        const std::vector<std::string> keys = {"E", "W"};
        struct Pair
        {
            Cycles direct = 0;
            Cycles iep = 0;
        };
        const auto cycles = bench::runPoints<Pair>(
            keys.size(), [&](std::size_t p) {
                const graph::CsrGraph &g = graph::loadGraph(keys[p]);
                const unsigned stride =
                    bench::autoStride(g, GpmApp::TC);
                const auto tr =
                    bench::gpmArtifacts(GpmApp::TC, g, stride);
                backend::SparseCoreBackend iep_be(base);
                const auto i =
                    gpm::runThreeChainIep(g, iep_be, stride);
                return Pair{replayOn(tr, base), i.cycles};
            });
        for (std::size_t p = 0; p < keys.size(); ++p)
            t.addRow({keys[p], std::to_string(cycles[p].direct),
                      std::to_string(cycles[p].iep),
                      Table::speedup(
                          static_cast<double>(cycles[p].direct) /
                          cycles[p].iep)});
        report.emit("software IEP rewrite for three-chain counting", t);
        std::printf("FlexMiner's hard-wired exploration engine cannot "
                    "adopt this rewrite;\nSparseCore picks it up as "
                    "plain software (the paper's §1 argument).\n");
    }
    return 0;
}
