/**
 * @file
 * Ablations of SparseCore's design choices (beyond the paper's own
 * SU-count and bandwidth sweeps): the SU parallel-comparison window,
 * the scratchpad, the nested-intersection translator, and the
 * software-side IEP optimization that demonstrates the architecture's
 * flexibility claim (§1).
 */

#include <cstdio>

#include "backend/sparsecore_backend.hh"
#include "bench_util.hh"
#include "gpm/iep.hh"

namespace {

sc::Cycles
runApp(const sc::arch::SparseCoreConfig &config, sc::gpm::GpmApp app,
       const sc::graph::CsrGraph &g, unsigned stride)
{
    sc::backend::SparseCoreBackend be(config);
    sc::gpm::PlanExecutor exec(g, be);
    exec.setRootStride(stride);
    return exec.runMany(sc::gpm::gpmAppPlans(app)).cycles;
}

} // namespace

int
main()
{
    using namespace sc;
    using gpm::GpmApp;
    arch::SparseCoreConfig base;
    bench::printHeader("Ablations", "design-choice sensitivity", base);

    const graph::CsrGraph &w = graph::loadGraph("W");
    const graph::CsrGraph &e = graph::loadGraph("E");

    // ---- 1. SU comparator window (Fig. 6 parallel comparison) ----
    std::printf("--- SU parallel-comparison window (T on W) ---\n");
    {
        Table t({"window", "cycles", "vs window=1"});
        const unsigned stride = bench::autoStride(w, GpmApp::T);
        Cycles w1 = 0;
        for (unsigned window : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
            arch::SparseCoreConfig c = base;
            c.suWindow = window;
            const Cycles cyc = runApp(c, GpmApp::T, w, stride);
            if (window == 1)
                w1 = cyc;
            t.addRow({std::to_string(window), std::to_string(cyc),
                      Table::speedup(static_cast<double>(w1) / cyc)});
        }
        bench::emitTable(t);
    }

    // ---- 2. scratchpad (stream reuse, §4.2) ----
    std::printf("--- scratchpad (TT on E: reused outer operands) ---\n");
    {
        Table t({"scratchpad", "cycles"});
        const unsigned stride = bench::autoStride(e, GpmApp::TT);
        for (unsigned kb : {0u, 4u, 16u, 64u}) {
            arch::SparseCoreConfig c = base;
            c.scratchpadBytes = kb == 0 ? 4 : kb * 1024; // ~off at 4B
            t.addRow({kb == 0 ? "off" : std::to_string(kb) + " KB",
                      std::to_string(
                          runApp(c, GpmApp::TT, e, stride))});
        }
        bench::emitTable(t);
    }

    // ---- 3. nested intersection (§4.6) ----
    std::printf("--- nested intersection (W) ---\n");
    {
        Table t({"app", "explicit loop", "S_NESTINTER", "gain"});
        for (auto [nested, flat] :
             {std::pair{GpmApp::T, GpmApp::TS},
              std::pair{GpmApp::C4, GpmApp::C4S},
              std::pair{GpmApp::C5, GpmApp::C5S}}) {
            const unsigned stride = bench::autoStride(w, nested);
            const Cycles with = runApp(base, nested, w, stride);
            const Cycles without = runApp(base, flat, w, stride);
            t.addRow({gpm::gpmAppName(nested),
                      std::to_string(without), std::to_string(with),
                      Table::speedup(static_cast<double>(without) /
                                     with)});
        }
        bench::emitTable(t);
    }

    // ---- 4. translation buffer size (§4.6) ----
    std::printf("--- nested-intersection translation buffer (T on W) "
                "---\n");
    {
        Table t({"entries", "cycles"});
        const unsigned stride = bench::autoStride(w, GpmApp::T);
        for (unsigned entries : {2u, 4u, 8u, 16u, 32u}) {
            arch::SparseCoreConfig c = base;
            c.translationBufferSize = entries;
            t.addRow({std::to_string(entries),
                      std::to_string(runApp(c, GpmApp::T, w, stride))});
        }
        bench::emitTable(t);
    }

    // ---- 5. IEP in software (the flexibility claim, §1) ----
    std::printf("--- software IEP rewrite for three-chain counting "
                "---\n");
    {
        Table t({"graph", "direct plan", "IEP rewrite", "gain"});
        for (const auto &key : {"E", "W"}) {
            const graph::CsrGraph &g = graph::loadGraph(key);
            const unsigned stride = bench::autoStride(g, GpmApp::TC);
            backend::SparseCoreBackend direct_be(base);
            gpm::PlanExecutor direct(g, direct_be);
            direct.setRootStride(stride);
            const auto d =
                direct.runMany(gpm::gpmAppPlans(GpmApp::TC));
            backend::SparseCoreBackend iep_be(base);
            const auto i =
                gpm::runThreeChainIep(g, iep_be, stride);
            t.addRow({key, std::to_string(d.cycles),
                      std::to_string(i.cycles),
                      Table::speedup(static_cast<double>(d.cycles) /
                                     i.cycles)});
        }
        bench::emitTable(t);
        std::printf("FlexMiner's hard-wired exploration engine cannot "
                    "adopt this rewrite;\nSparseCore picks it up as "
                    "plain software (the paper's §1 argument).\n");
    }
    return 0;
}
