/**
 * @file
 * Figure 16: geometric-mean speedup of ExTensor, OuterSPACE, Gamma,
 * and SparseCore running outer-product / Gustavson, all normalized to
 * SparseCore running inner-product (one compute unit everywhere, as
 * in §6.9.2).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "backend/sparsecore_backend.hh"
#include "baselines/tensor_accels.hh"
#include "bench_util.hh"
#include <algorithm>

#include "kernels/spmspm.hh"
#include "tensor/tensor_datasets.hh"

int
main()
{
    using namespace sc;
    using kernels::SpmspmAlgorithm;

    arch::SparseCoreConfig config;
    config.numSus = 1; // fair single-unit comparison
    bench::printHeader("Figure 16",
                       "tensor accelerators vs SparseCore dataflows "
                       "(gmean over Table-5 matrices, normalized to "
                       "SparseCore inner-product)",
                       config);
    bench::BenchReport report("fig16");

    struct Point
    {
        double sc_outer = 1, sc_gus = 1, ext = 1, osp = 1, gamma = 1;
    };

    // The gmean uses the small/medium matrices at full size; the two
    // largest are row-sampled identically everywhere. Each matrix is
    // an independent host-pool point.
    const auto keys = tensor::allMatrixKeys();
    const auto points = bench::runPoints<Point>(
        keys.size(), [&](std::size_t p) {
            const tensor::SparseMatrix &m =
                tensor::loadMatrix(keys[p]);
            const double pairs =
                static_cast<double>(m.rows()) * m.rows();
            unsigned stride = 1;
            if (m.nnz() > 400'000)
                stride = static_cast<unsigned>(m.nnz() / 200'000);
            if (pairs > 1.5e6)
                stride = std::max(
                    stride,
                    static_cast<unsigned>(pairs / 1.5e6 + 1.0));

            backend::SparseCoreBackend inner_be(config);
            const auto sc_inner = kernels::runSpmspm(
                m, m, SpmspmAlgorithm::Inner, inner_be, stride);
            backend::SparseCoreBackend outer_be(config);
            const auto sc_outer = kernels::runSpmspm(
                m, m, SpmspmAlgorithm::Outer, outer_be, stride);
            backend::SparseCoreBackend gus_be(config);
            const auto sc_gus = kernels::runSpmspm(
                m, m, SpmspmAlgorithm::Gustavson, gus_be, stride);

            const auto ext =
                baselines::extensorSpmspm(m, m, 16, stride);
            const auto osp = baselines::outerspaceSpmspm(m, m, stride);
            const auto gamma = baselines::gammaSpmspm(m, m, stride);

            const double base = static_cast<double>(sc_inner.cycles);
            return Point{base / sc_outer.cycles, base / sc_gus.cycles,
                         base / ext.cycles, base / osp.cycles,
                         base / gamma.cycles};
        });

    std::vector<double> sc_outer_s, sc_gus_s, ext_s, osp_s, gamma_s;
    for (const Point &pt : points) {
        sc_outer_s.push_back(pt.sc_outer);
        sc_gus_s.push_back(pt.sc_gus);
        ext_s.push_back(pt.ext);
        osp_s.push_back(pt.osp);
        gamma_s.push_back(pt.gamma);
    }

    Table table({"configuration", "gmean speedup over "
                                  "inner-product SparseCore"});
    table.addRow({"inner: SparseCore", "1.00x"});
    table.addRow({"inner: ExTensor", Table::speedup(geomean(ext_s))});
    table.addRow(
        {"outer: SparseCore", Table::speedup(geomean(sc_outer_s))});
    table.addRow(
        {"outer: OuterSPACE", Table::speedup(geomean(osp_s))});
    table.addRow(
        {"gustavson: SparseCore", Table::speedup(geomean(sc_gus_s))});
    table.addRow({"gustavson: Gamma", Table::speedup(geomean(gamma_s))});
    report.emit("tensor accelerators vs SparseCore dataflows", table);

    std::printf(
        "Expected shape (§6.9.2): specialized accelerators beat\n"
        "SparseCore on their own dataflow (5.2x/3.1x/2.4x in the\n"
        "paper), but SparseCore with the better algorithm (Gustavson)\n"
        "beats accelerators locked to worse dataflows.\n");
    return 0;
}
