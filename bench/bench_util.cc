#include "bench_util.hh"

#include <algorithm>
#include <cstdio>

#include "backend/functional_backend.hh"
#include "common/logging.hh"
#include "gpm/executor.hh"

namespace sc::bench {

void
printHeader(const std::string &figure, const std::string &title,
            const arch::SparseCoreConfig &config)
{
    setVerbose(false);
    std::printf("==== %s: %s ====\n", figure.c_str(), title.c_str());
    std::printf("config: %s\n", config.describe().c_str());
    std::printf("        cores modeled: 1 | L1d %lluKB | L2 %lluKB | "
                "L3 %lluMB | line 64B (Table 2)\n\n",
                static_cast<unsigned long long>(
                    config.mem.l1.sizeBytes / 1024),
                static_cast<unsigned long long>(
                    config.mem.l2.sizeBytes / 1024),
                static_cast<unsigned long long>(
                    config.mem.l3.sizeBytes / (1024 * 1024)));
}

unsigned
autoStride(const graph::CsrGraph &g, gpm::GpmApp app,
           std::uint64_t target_elements)
{
    // Probe at a coarse stride; work scales ~linearly with the root
    // count, so extrapolate and clamp.
    const unsigned probe =
        std::max(1u, std::min(257u, g.numVertices() / 32));
    backend::FunctionalBackend functional;
    gpm::PlanExecutor executor(g, functional);
    executor.setRootStride(probe);
    executor.runMany(gpm::gpmAppPlans(app));
    const std::uint64_t probe_work =
        functional.stats().get("setOpElements") +
        functional.stats().get("streamLoads") +
        functional.stats().get("nestedElements");
    const double full_work =
        static_cast<double>(probe_work) * probe;
    if (full_work <= static_cast<double>(target_elements))
        return 1;
    const double stride =
        full_work / static_cast<double>(target_elements);
    return static_cast<unsigned>(
        std::min<double>(stride + 1.0, g.numVertices() / 8.0 + 1.0));
}

void
emitTable(const Table &table)
{
    std::printf("%s\n", table.str().c_str());
    std::printf("-- csv --\n%s\n", table.csv().c_str());
}

} // namespace sc::bench
