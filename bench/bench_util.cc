#include "bench_util.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "backend/functional_backend.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "gpm/executor.hh"
#include "trace/recorder.hh"

namespace sc::bench {

void
printHeader(const std::string &figure, const std::string &title,
            const arch::SparseCoreConfig &config)
{
    setVerbose(false);
    std::printf("==== %s: %s ====\n", figure.c_str(), title.c_str());
    std::printf("config: %s\n", config.describe().c_str());
    std::printf("        cores modeled: 1 | L1d %lluKB | L2 %lluKB | "
                "L3 %lluMB | line 64B (Table 2)\n\n",
                static_cast<unsigned long long>(
                    config.mem.l1.sizeBytes / 1024),
                static_cast<unsigned long long>(
                    config.mem.l2.sizeBytes / 1024),
                static_cast<unsigned long long>(
                    config.mem.l3.sizeBytes / (1024 * 1024)));
}

bool
benchSmoke()
{
    return config().benchSmoke;
}

std::string
benchResultsDir()
{
    static const std::string dir = [] {
        std::string d = config().benchDir;
        std::error_code ec;
        std::filesystem::create_directories(d, ec);
        if (ec)
            warn("cannot create bench results dir %s: %s", d.c_str(),
                 ec.message().c_str());
        return d;
    }();
    return dir;
}

unsigned
autoStride(const graph::CsrGraph &g, gpm::GpmApp app,
           std::uint64_t target_elements)
{
    if (benchSmoke())
        target_elements = std::max<std::uint64_t>(
            1, target_elements / 64);
    // Probe at a coarse stride; work scales ~linearly with the root
    // count, so extrapolate and clamp.
    const unsigned probe =
        std::max(1u, std::min(257u, g.numVertices() / 32));
    backend::FunctionalBackend functional;
    gpm::PlanExecutor executor(g, functional);
    executor.setRootStride(probe);
    executor.runMany(gpm::gpmAppPlans(app));
    const std::uint64_t probe_work =
        functional.stats().get("setOpElements") +
        functional.stats().get("streamLoads") +
        functional.stats().get("nestedElements");
    const double full_work =
        static_cast<double>(probe_work) * probe;
    if (full_work <= static_cast<double>(target_elements))
        return 1;
    const double stride =
        full_work / static_cast<double>(target_elements);
    return static_cast<unsigned>(
        std::min<double>(stride + 1.0, g.numVertices() / 8.0 + 1.0));
}

trace::Trace
captureGpmTrace(const graph::CsrGraph &g,
                const std::vector<gpm::MiningPlan> &plans,
                unsigned root_stride, std::uint64_t *embeddings)
{
    trace::TraceRecorder recorder;
    gpm::PlanExecutor executor(g, recorder);
    executor.setRootStride(root_stride);
    const auto run = executor.runMany(plans);
    if (embeddings)
        *embeddings = run.embeddings;
    return recorder.takeTrace();
}

GpmArtifacts
gpmArtifacts(gpm::GpmApp app, const graph::CsrGraph &g,
             unsigned root_stride)
{
    GpmArtifacts artifacts;
    if (api::ArtifactStore::resolveEnabled(std::nullopt)) {
        artifacts.key =
            api::ArtifactStore::gpmTraceKey(app, g, root_stride);
        artifacts.cached = api::ArtifactStore::global().trace(
            artifacts.key, [&](trace::TraceRecorder &recorder) {
                gpm::PlanExecutor executor(g, recorder);
                executor.setRootStride(root_stride);
                return executor.runMany(gpm::gpmAppPlans(app))
                    .embeddings;
            });
    } else {
        auto local =
            std::make_shared<api::ArtifactStore::CachedTrace>();
        local->trace =
            captureGpmTrace(g, gpm::gpmAppPlans(app), root_stride,
                            &local->functionalResult);
        artifacts.cached = std::move(local);
    }
    artifacts.embeddings = artifacts.cached->functionalResult;
    return artifacts;
}

trace::ReplayResult
replayArtifacts(const GpmArtifacts &artifacts,
                backend::ExecBackend &be)
{
    const trace::ReplayMode mode =
        trace::resolveReplayMode(trace::ReplayMode::Auto);
    if (!artifacts.key.empty() &&
        mode == trace::ReplayMode::Bytecode) {
        const auto bc = api::ArtifactStore::global().program(
            artifacts.key, artifacts.cached->trace);
        return trace::replayCompiled(*bc, be, /*verify=*/false);
    }
    return trace::replay(artifacts.cached->trace, be);
}

void
emitTable(const Table &table)
{
    std::printf("%s\n", table.str().c_str());
    std::printf("-- csv --\n%s\n", table.csv().c_str());
}

BenchReport::BenchReport(std::string name) : name_(std::move(name))
{
}

BenchReport::~BenchReport()
{
    finish();
}

void
BenchReport::emit(const std::string &title, const Table &table)
{
    if (!title.empty())
        std::printf("--- %s ---\n", title.c_str());
    emitTable(table);
    tables_.emplace_back(title, table.json());
}

void
BenchReport::setExtra(const std::string &key, JsonValue value)
{
    extras_.emplace_back(key, std::move(value));
}

void
BenchReport::finish()
{
    if (finished_)
        return;
    finished_ = true;
    const double seconds = timer_.seconds();
    const unsigned threads = ThreadPool::global().numThreads();
    std::printf("host wall clock: %.3f s on %u host thread%s "
                "(SC_HOST_THREADS to pin)\n",
                seconds, threads, threads == 1 ? "" : "s");
    const api::ArtifactStoreStats store =
        api::ArtifactStore::global().stats();
    std::printf("%s\n", store.str().c_str());

    // One emission path (common/json) shared with the job server and
    // the CLI --json mode — this used to be hand-rolled fprintf.
    JsonValue out = JsonValue::object();
    out.set("bench", JsonValue::str(name_));
    out.set("host_threads",
            JsonValue::number(std::uint64_t{threads}));
    out.set("host_wall_seconds", JsonValue::number(seconds));
    JsonValue store_json = JsonValue::object();
    store_json.set("trace_hits", JsonValue::number(store.traces.hits));
    store_json.set("trace_misses",
                   JsonValue::number(store.traces.misses));
    store_json.set("program_hits",
                   JsonValue::number(store.programs.hits));
    store_json.set("program_misses",
                   JsonValue::number(store.programs.misses));
    out.set("artifact_store", std::move(store_json));
    JsonValue tables = JsonValue::array();
    for (const auto &[title, json] : tables_) {
        JsonValue entry = JsonValue::object();
        entry.set("title", JsonValue::str(title));
        // Table::json() emits trusted JSON; re-parse so the dump is
        // one well-formed document rather than spliced text.
        JsonParseResult parsed = parseJson(json);
        entry.set("table", parsed.ok() ? std::move(*parsed.value)
                                       : JsonValue::str(json));
        tables.push(std::move(entry));
    }
    out.set("tables", std::move(tables));
    for (auto &[key, value] : extras_)
        out.set(key, std::move(value));

    const std::string path =
        benchResultsDir() + "/BENCH_" + name_ + ".json";
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot write %s", path.c_str());
        return;
    }
    const std::string text = out.dump();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
}

} // namespace sc::bench
