/**
 * @file
 * Host-parallel runtime demonstration: times a six-core mining run
 * (Table 2 configuration) with a 1-thread host pool vs the default
 * pool, checks that the results are identical, and reports the host
 * wall-clock speedup. On a host with >= 4 hardware threads the
 * speedup should be >= 2x; on a 1-thread host the two runs tie.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "api/parallel.hh"
#include "bench_util.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "graph/datasets.hh"

int
main()
{
    using namespace sc;

    arch::SparseCoreConfig config;
    bench::printHeader("Host speedup",
                       "host wall clock, 1 host thread vs the default "
                       "pool (simulated results are identical)",
                       config);
    bench::BenchReport report("host_speedup");

    ThreadPool serial(1);
    ThreadPool &pooled = ThreadPool::global();
    std::printf("default pool: %u host thread(s)\n\n",
                pooled.numThreads());

    struct Case
    {
        const char *graph;
        gpm::GpmApp app;
    };
    const std::vector<Case> cases = {
        {"B", gpm::GpmApp::T},
        {"E", gpm::GpmApp::T},
        {"B", gpm::GpmApp::C4},
    };

    Table table({"graph", "app", "embeddings", "1 thread (s)",
                 "pooled (s)", "host speedup"});
    for (const Case &c : cases) {
        const graph::CsrGraph &g = graph::loadGraph(c.graph);
        api::HostOptions h1, hN;
        h1.pool = &serial;
        hN.pool = &pooled;

        // Warm-up pass pages the graph in and primes allocators.
        api::mineParallelSparseCore(c.app, g, 6, config, 1, hN);

        bench::WallTimer t1;
        const auto r1 =
            api::mineParallelSparseCore(c.app, g, 6, config, 1, h1);
        const double s1 = t1.seconds();

        bench::WallTimer tN;
        const auto rN =
            api::mineParallelSparseCore(c.app, g, 6, config, 1, hN);
        const double sN = tN.seconds();

        if (r1.embeddings != rN.embeddings || r1.cycles != rN.cycles)
            panic("host-parallel result diverged on %s/%s", c.graph,
                  gpm::gpmAppName(c.app));

        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f", s1);
        const std::string s1_str = buf;
        std::snprintf(buf, sizeof(buf), "%.3f", sN);
        const std::string sN_str = buf;
        table.addRow({c.graph, gpm::gpmAppName(c.app),
                      std::to_string(r1.embeddings), s1_str, sN_str,
                      Table::speedup(s1 / sN)});
    }
    report.emit("six simulated cores, chunked root split", table);
    return 0;
}
