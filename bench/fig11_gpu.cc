/**
 * @file
 * Figure 11: SparseCore (with symmetry breaking) vs GPU
 * implementations with and without symmetry breaking, for T, 4C, 5C,
 * TT, TC, TM on B, E, F, W, M, Y (log scale in the paper). Each
 * (app, graph) point captures its event trace once and replays it
 * onto the three substrates; points run concurrently on the host
 * pool.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "backend/sparsecore_backend.hh"
#include "baselines/gpu_model.hh"
#include "bench_util.hh"
#include "gpm/isomorphism.hh"
#include "trace/replay.hh"

int
main()
{
    using namespace sc;
    using gpm::GpmApp;

    arch::SparseCoreConfig config;
    bench::printHeader(
        "Figure 11",
        "speedup vs GPU (K40m model; SparseCore at 1 GHz)", config);
    bench::BenchReport report("fig11");

    const std::vector<GpmApp> apps = {GpmApp::T,  GpmApp::C4,
                                      GpmApp::C5, GpmApp::TT,
                                      GpmApp::TC, GpmApp::TM};
    const std::vector<std::string> keys = {"B", "E", "F",
                                           "W", "M", "Y"};
    for (const GpmApp app : apps) {
        const auto plans = gpm::gpmAppPlans(app);
        const unsigned redundancy = static_cast<unsigned>(
            gpm::automorphisms(plans.front().pattern).size());
        using Row = std::vector<std::string>;
        const auto rows = bench::runPoints<Row>(
            keys.size(), [&](std::size_t p) {
                const std::string &key = keys[p];
                const graph::CsrGraph &g = graph::loadGraph(key);
                const unsigned stride = bench::autoStride(g, app);
                const auto artifacts =
                    bench::gpmArtifacts(app, g, stride);

                backend::SparseCoreBackend sc_be(config);
                const Cycles sc_cycles =
                    bench::replayArtifacts(artifacts, sc_be).cycles;

                baselines::GpuBackend gpu_with(true, redundancy);
                const Cycles gw =
                    bench::replayArtifacts(artifacts, gpu_with).cycles;

                baselines::GpuBackend gpu_without(false, redundancy);
                const Cycles gwo =
                    bench::replayArtifacts(artifacts, gpu_without)
                        .cycles;

                return Row{
                    key + (stride > 1 ? "*" : ""),
                    Table::speedup(static_cast<double>(gwo) /
                                   static_cast<double>(sc_cycles), 1),
                    Table::speedup(static_cast<double>(gw) /
                                   static_cast<double>(sc_cycles), 1)};
            });
        Table table({"graph", "vs GPU w/o breaking",
                     "vs GPU w. breaking"});
        for (const Row &row : rows)
            table.addRow(row);
        report.emit(gpm::gpmAppName(app), table);
    }
    std::printf("GPU model calibrated to the paper's profiled 4.4%% "
                "warp / 13%% bandwidth utilization (see "
                "EXPERIMENTS.md).\n");
    return 0;
}
