/**
 * @file
 * Figure 11: SparseCore (with symmetry breaking) vs GPU
 * implementations with and without symmetry breaking, for T, 4C, 5C,
 * TT, TC, TM on B, E, F, W, M, Y (log scale in the paper).
 */

#include <cstdio>

#include "backend/sparsecore_backend.hh"
#include "baselines/gpu_model.hh"
#include "bench_util.hh"
#include "gpm/isomorphism.hh"

int
main()
{
    using namespace sc;
    using gpm::GpmApp;

    arch::SparseCoreConfig config;
    bench::printHeader(
        "Figure 11",
        "speedup vs GPU (K40m model; SparseCore at 1 GHz)", config);

    const std::vector<GpmApp> apps = {GpmApp::T,  GpmApp::C4,
                                      GpmApp::C5, GpmApp::TT,
                                      GpmApp::TC, GpmApp::TM};
    const std::vector<std::string> keys = {"B", "E", "F",
                                           "W", "M", "Y"};
    for (const GpmApp app : apps) {
        const auto plans = gpm::gpmAppPlans(app);
        const unsigned redundancy = static_cast<unsigned>(
            gpm::automorphisms(plans.front().pattern).size());
        Table table({"graph", "vs GPU w/o breaking",
                     "vs GPU w. breaking"});
        for (const auto &key : keys) {
            const graph::CsrGraph &g = graph::loadGraph(key);
            const unsigned stride = bench::autoStride(g, app);

            backend::SparseCoreBackend sc_be(config);
            gpm::PlanExecutor sc_exec(g, sc_be);
            sc_exec.setRootStride(stride);
            const auto sc_res = sc_exec.runMany(plans);

            baselines::GpuBackend gpu_with(true, redundancy);
            gpm::PlanExecutor gw_exec(g, gpu_with);
            gw_exec.setRootStride(stride);
            const auto gw = gw_exec.runMany(plans);

            baselines::GpuBackend gpu_without(false, redundancy);
            gpm::PlanExecutor gwo_exec(g, gpu_without);
            gwo_exec.setRootStride(stride);
            const auto gwo = gwo_exec.runMany(plans);

            table.addRow(
                {key + (stride > 1 ? "*" : ""),
                 Table::speedup(static_cast<double>(gwo.cycles) /
                                static_cast<double>(sc_res.cycles),
                                1),
                 Table::speedup(static_cast<double>(gw.cycles) /
                                static_cast<double>(sc_res.cycles),
                                1)});
        }
        std::printf("--- %s ---\n", gpm::gpmAppName(app));
        bench::emitTable(table);
    }
    std::printf("GPU model calibrated to the paper's profiled 4.4%% "
                "warp / 13%% bandwidth utilization (see "
                "EXPERIMENTS.md).\n");
    return 0;
}
