/**
 * @file
 * Job-queue throughput under mixed multi-dataset traffic, per
 * scheduling policy: the workload that exposes the FIFO convoy. Four
 * GPM dataset lanes, several jobs each (compare and run modes
 * mixed), submitted *dataset-major* — exactly the order that makes a
 * fire-and-forget FIFO pile every worker onto the same cold dataset
 * (they serialize on the ArtifactStore's in-flight dedup) while the
 * other datasets sit untouched. The affinity policy parks the cold
 * siblings and spreads distinct datasets across workers, so cold
 * captures overlap with warm replays.
 *
 * Each (policy, workers) cell starts from a cold store
 * (ArtifactStore::clear()) and runs the identical batch; the table
 * reports jobs/sec, latency percentiles, store misses/waits and the
 * scheduler counters. Simulated cycles per job are bit-identical
 * across every cell (the replay invariants) — asserted here, not
 * just claimed.
 *
 * Writes BENCH_server.json: a "runs" array (one member per cell,
 * with the full queue stats), plus "speedup" with the affinity-vs-
 * fifo jobs/sec ratio at the widest pool. On hosts with >= 4 cores
 * the bench *gates* (exits nonzero) unless affinity clears 1.3x at
 * >= 4 workers, like the replay microbench's 5x gate; narrower hosts
 * cannot overlap captures on the wall clock, so the gate reports
 * itself skipped. SC_BENCH_SMOKE=1 shrinks the batch for CI.
 */

#include <cstdio>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "api/job_queue.hh"
#include "bench_util.hh"
#include "common/table.hh"

using namespace sc;

namespace {

/** One policy x width cell's outcome. */
struct Cell
{
    api::SchedPolicy policy = api::SchedPolicy::Fifo;
    unsigned workers = 0;
    api::JobQueueStats stats;
};

/**
 * The mixed multi-dataset batch: `jobs_per_dataset` jobs on each of
 * four graph-dataset lanes, dataset-major (the convoy-inducing
 * order). Jobs within a lane mix compare and run modes — different
 * work, same trace+program artifacts.
 */
std::vector<std::string>
datasetMajorBatch(unsigned jobs_per_dataset)
{
    const char *datasets[] = {"W", "C", "E", "B"};
    std::vector<std::string> lines;
    for (const char *ds : datasets) {
        for (unsigned i = 0; i < jobs_per_dataset; ++i) {
            const bool run_mode = i % 2 == 1;
            std::string line = std::string(R"({"version":1,"id":")") +
                               ds + "-" + std::to_string(i) +
                               R"(","workload":"gpm","app":"T",)" +
                               R"("dataset":")" + ds + "\"";
            if (run_mode)
                line += R"(,"mode":"run","substrate":"sparsecore")";
            line += "}";
            lines.push_back(std::move(line));
        }
    }
    return lines;
}

/** Run one policy x width cell against a cold store. */
Cell
runCell(api::SchedPolicy policy, unsigned workers,
        const std::vector<std::string> &batch,
        std::map<std::string, Cycles> &cycles_by_id)
{
    // Cold store per cell: every run pays (and schedules) the same
    // captures and compiles, so the cells are comparable.
    api::ArtifactStore::global().clear();

    Cell cell;
    cell.policy = policy;
    cell.workers = workers;
    api::JobQueue queue(workers, policy);
    std::vector<std::future<api::JobReport>> futures;
    futures.reserve(batch.size());
    for (const std::string &line : batch)
        futures.push_back(queue.submitJson(line));
    for (auto &f : futures) {
        const api::JobReport r = f.get();
        if (!r.ok)
            fatal("job %s failed in %s x%u", r.id.c_str(),
                  api::schedPolicyName(policy), workers);
        // The determinism invariant: a job's simulated cycles must
        // not depend on policy or width.
        const Cycles cycles =
            r.run ? r.run->cycles : r.comparison->accelerated.cycles;
        const auto [it, inserted] =
            cycles_by_id.emplace(r.id, cycles);
        if (!inserted && it->second != cycles)
            fatal("job %s: cycles moved with scheduling (%llu vs "
                  "%llu)",
                  r.id.c_str(),
                  static_cast<unsigned long long>(it->second),
                  static_cast<unsigned long long>(cycles));
    }
    cell.stats = queue.stats();
    return cell;
}

} // namespace

int
main()
{
    arch::SparseCoreConfig config;
    bench::printHeader("server",
                       "JobQueue scheduling: fifo vs affinity on a "
                       "mixed multi-dataset batch",
                       config);
    bench::BenchReport report("server");

    const unsigned jobs_per_dataset = bench::benchSmoke() ? 2 : 4;
    const std::vector<std::string> batch =
        datasetMajorBatch(jobs_per_dataset);
    const std::vector<unsigned> widths =
        bench::benchSmoke() ? std::vector<unsigned>{4}
                            : std::vector<unsigned>{1, 2, 4};

    std::map<std::string, Cycles> cycles_by_id;
    std::vector<Cell> cells;
    for (const unsigned workers : widths)
        for (const api::SchedPolicy policy :
             {api::SchedPolicy::Fifo, api::SchedPolicy::Affinity})
            cells.push_back(
                runCell(policy, workers, batch, cycles_by_id));

    Table table({"policy", "workers", "jobs/s", "p50 ms", "p99 ms",
                 "trace miss", "store waits", "warmers",
                 "convoys avoided"});
    JsonValue runs = JsonValue::array();
    for (const Cell &cell : cells) {
        const api::JobQueueStats &s = cell.stats;
        table.addRow({api::schedPolicyName(cell.policy),
                      std::to_string(cell.workers),
                      Table::num(s.jobsPerSecond, 2),
                      Table::num(s.p50LatencySeconds * 1e3, 2),
                      Table::num(s.p99LatencySeconds * 1e3, 2),
                      std::to_string(s.traceMisses),
                      std::to_string(s.traceWaits + s.programWaits),
                      std::to_string(s.scheduler.warmers),
                      std::to_string(s.scheduler.convoyAvoided)});
        JsonValue run = JsonValue::object();
        run.set("policy", JsonValue::str(
                              api::schedPolicyName(cell.policy)));
        run.set("workers",
                JsonValue::number(std::uint64_t{cell.workers}));
        run.set("queue", s.toJsonValue());
        runs.push(std::move(run));
    }
    report.emit("policy x workers (cold store per cell)", table);
    report.setExtra("runs", std::move(runs));

    // The headline ratio: affinity vs fifo jobs/sec at the widest
    // pool (the acceptance gate's shape).
    const unsigned widest = widths.back();
    double fifo_jps = 0, affinity_jps = 0;
    for (const Cell &cell : cells) {
        if (cell.workers != widest)
            continue;
        (cell.policy == api::SchedPolicy::Fifo ? fifo_jps
                                               : affinity_jps) =
            cell.stats.jobsPerSecond;
    }
    const double speedup =
        fifo_jps > 0 ? affinity_jps / fifo_jps : 0;
    std::printf("affinity vs fifo at %u workers: %.2fx jobs/s "
                "(%.2f vs %.2f)\n",
                widest, speedup, affinity_jps, fifo_jps);

    JsonValue sp = JsonValue::object();
    sp.set("workers", JsonValue::number(std::uint64_t{widest}));
    sp.set("fifo_jobs_per_second", JsonValue::number(fifo_jps));
    sp.set("affinity_jobs_per_second",
           JsonValue::number(affinity_jps));
    sp.set("affinity_over_fifo", JsonValue::number(speedup));

    // Wall-clock gate: cold captures can only overlap when the host
    // actually runs >= 4 workers concurrently (cf. the parallel
    // tests' hardware_concurrency guard). The scheduling *decisions*
    // are pinned deterministically in check.sh's scheduler leg and
    // tests/scheduler_test.cc regardless of host width.
    const bool gated =
        std::thread::hardware_concurrency() >= 4 && widest >= 4;
    sp.set("gated", JsonValue::boolean(gated));
    report.setExtra("speedup", std::move(sp));

    if (gated && speedup < 1.3) {
        std::fprintf(stderr,
                     "FAIL: affinity %.2fx fifo at %u workers "
                     "(gate: >= 1.3x)\n",
                     speedup, widest);
        return 1;
    }
    if (!gated)
        std::printf("gate skipped: host has %u cores (< 4); "
                    "captures cannot overlap on the wall clock\n",
                    std::thread::hardware_concurrency());
    return 0;
}
