/**
 * @file
 * Job-queue throughput under mixed multi-tenant traffic: a corpus of
 * GPM, FSM and tensor jobs (both modes, both substrates) submitted
 * as JSON through api::JobQueue, the way the sparsecore_server front
 * end drives it. Measures jobs/second and p50/p99 admission-to-
 * completion latency, and shows the artifact-store effect: tenants
 * naming the same dataset share one capture and one compile.
 *
 * Simulated cycles per job are bit-identical to sequential
 * Machine::run of the same spec (the replay invariants); this bench
 * measures only the host-side service metrics. Writes
 * BENCH_server.json with a "queue" member (jobs/sec, latency
 * percentiles, store hit deltas). SC_BENCH_SMOKE=1 shrinks the
 * traffic for CI.
 */

#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "api/job_queue.hh"
#include "bench_util.hh"
#include "common/table.hh"

using namespace sc;

namespace {

/** The per-tenant traffic mix: every workload class, both modes. */
std::vector<std::string>
trafficMix()
{
    return {
        R"({"version":1,"id":"gpm-T-W","workload":"gpm","app":"T","dataset":"W"})",
        R"({"version":1,"id":"gpm-T-W-run","workload":"gpm","app":"T","dataset":"W","mode":"run","substrate":"sparsecore"})",
        R"({"version":1,"id":"gpm-TC-W","workload":"gpm","app":"TC","dataset":"W","mode":"run","substrate":"cpu"})",
        R"({"version":1,"id":"gpm-T-C","workload":"gpm","app":"T","dataset":"C"})",
        R"({"version":1,"id":"fsm-C","workload":"fsm","dataset":"C","min_support":500})",
        R"({"version":1,"id":"fsm-C-run","workload":"fsm","dataset":"C","min_support":500,"mode":"run","substrate":"sparsecore"})",
        R"({"version":1,"id":"spmspm-C","workload":"spmspm","dataset":"C"})",
        R"({"version":1,"id":"spmspm-C-inner","workload":"spmspm","dataset":"C","algorithm":"inner","mode":"run","substrate":"cpu"})",
        R"({"version":1,"id":"spmspm-E","workload":"spmspm","dataset":"E","options":{"stride":4}})",
        R"({"version":1,"id":"ttv-Ch","workload":"ttv","dataset":"Ch","options":{"stride":8}})",
        R"({"version":1,"id":"ttv-Ch-run","workload":"ttv","dataset":"Ch","options":{"stride":8},"mode":"run","substrate":"cpu"})",
        R"({"version":1,"id":"ttm-U","workload":"ttm","dataset":"U","options":{"stride":16}})",
    };
}

} // namespace

int
main()
{
    arch::SparseCoreConfig config;
    bench::printHeader("server", "JobQueue multi-tenant throughput",
                       config);
    bench::BenchReport report("server");

    const std::vector<std::string> mix = trafficMix();
    const unsigned tenants = bench::benchSmoke() ? 1 : 3;

    api::JobQueue queue; // shared global pool
    std::vector<std::future<api::JobReport>> futures;
    futures.reserve(mix.size() * tenants);
    // Tenants interleave: every tenant submits the whole mix, so
    // jobs naming one dataset race for the same store entries — the
    // first capture/compile wins, the rest hit.
    for (unsigned t = 0; t < tenants; ++t)
        for (const std::string &line : mix)
            futures.push_back(queue.submitJson(line));

    std::vector<api::JobReport> reports;
    reports.reserve(futures.size());
    for (auto &f : futures)
        reports.push_back(f.get());

    Table table({"job", "ok", "cycles", "queue ms", "exec ms"});
    for (std::size_t i = 0; i < mix.size() && i < reports.size();
         ++i) {
        const api::JobReport &r = reports[i];
        const Cycles cycles =
            r.run ? r.run->cycles
                  : (r.comparison ? r.comparison->accelerated.cycles
                                  : 0);
        table.addRow({r.id, r.ok ? "yes" : "no",
                      std::to_string(cycles),
                      Table::num(r.queueSeconds * 1e3, 2),
                      Table::num(r.execSeconds * 1e3, 2)});
    }
    report.emit("per-job (tenant 0)", table);

    const api::JobQueueStats stats = queue.stats();
    std::printf("%s\n", stats.str().c_str());
    report.setExtra("queue", stats.toJsonValue());

    bool all_ok = true;
    for (const api::JobReport &r : reports)
        all_ok &= r.ok;
    if (!all_ok) {
        std::fprintf(stderr, "some jobs failed\n");
        return 1;
    }
    return 0;
}
