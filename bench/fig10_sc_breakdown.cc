/**
 * @file
 * Figure 10: SparseCore execution-cycle breakdown for TC, TM, TS, T,
 * 4C, 5C, 4CS, 5CS, TT on all ten graphs. The (app, graph) points are
 * independent and run concurrently on the host pool.
 */

#include <string>
#include <vector>

#include "api/machine.hh"
#include "bench_util.hh"

namespace {

std::vector<std::string>
breakdownRow(const std::string &label, const sc::sim::CycleBreakdown &bd)
{
    using sc::Table;
    using sc::sim::CycleClass;
    return {label,
            Table::num(100 * bd.fraction(CycleClass::Cache), 1),
            Table::num(100 * bd.fraction(CycleClass::Mispredict), 1),
            Table::num(100 * bd.fraction(CycleClass::OtherCompute), 1),
            Table::num(100 * bd.fraction(CycleClass::Intersection), 1)};
}

} // namespace

int
main()
{
    using namespace sc;
    using gpm::GpmApp;
    api::Machine machine;
    bench::printHeader("Figure 10", "SparseCore execution breakdown",
                       machine.config());
    bench::BenchReport report("fig10");

    const std::vector<GpmApp> apps = {
        GpmApp::TC, GpmApp::TM, GpmApp::TS,  GpmApp::T,  GpmApp::C4,
        GpmApp::C5, GpmApp::C4S, GpmApp::C5S, GpmApp::TT};
    for (const GpmApp app : apps) {
        const auto keys = graph::allGraphKeys();
        using Row = std::vector<std::string>;
        const auto rows = bench::runPoints<Row>(
            keys.size(), [&](std::size_t p) {
                const std::string &key = keys[p];
                const graph::CsrGraph &g = graph::loadGraph(key);
                const unsigned stride = bench::autoStride(g, app);
                api::RunOptions options;
                options.rootStride = stride;
                const auto res =
                    machine.run(api::RunRequest::gpm(app, g, options),
                                api::Substrate::SparseCore);
                return breakdownRow(key + (stride > 1 ? "*" : ""),
                                    res.breakdown);
            });
        Table table({"graph", "Cache%", "Mispred%", "OtherComp%",
                     "Intersection%"});
        for (const Row &row : rows)
            table.addRow(row);
        report.emit(gpm::gpmAppName(app), table);
    }
    return 0;
}
