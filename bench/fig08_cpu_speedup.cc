/**
 * @file
 * Figure 8: SparseCore speedup over the CPU baseline for every GPM
 * application (TC, TM, TS, T, TT, 4C, 5C, 4CS, 5CS) on all ten
 * graphs, plus FSM on mico at thresholds 1K and 2K. The (app, graph)
 * sweep points are independent, so they run concurrently on the host
 * pool; rows are emitted in dataset order either way.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "api/machine.hh"
#include "bench_util.hh"
#include "graph/datasets.hh"

int
main()
{
    using namespace sc;
    api::Machine machine;
    bench::printHeader("Figure 8", "speedups over CPU",
                       machine.config());
    bench::BenchReport report("fig08");

    for (const gpm::GpmApp app : gpm::allGpmApps()) {
        const auto keys = graph::allGraphKeys();
        using Row = std::vector<std::string>;
        const auto rows = bench::runPoints<Row>(
            keys.size(), [&](std::size_t p) {
                const std::string &key = keys[p];
                const graph::CsrGraph &g = graph::loadGraph(key);
                const unsigned stride = bench::autoStride(g, app);
                api::RunOptions options;
                options.rootStride = stride;
                const api::Comparison cmp = machine.compare(
                    api::RunRequest::gpm(app, g, options));
                return Row{key + (stride > 1 ? "*" : ""),
                           std::to_string(cmp.functionalResult),
                           std::to_string(cmp.baseline.cycles),
                           std::to_string(cmp.accelerated.cycles),
                           Table::speedup(cmp.speedup())};
            });
        Table table({"graph", "embeddings", "cpu cycles",
                     "sparsecore cycles", "speedup"});
        for (const Row &row : rows)
            table.addRow(row);
        report.emit(gpm::gpmAppName(app), table);
    }

    // FSM on mico at the paper's two thresholds.
    const std::vector<std::uint64_t> supports = {1000, 2000};
    const graph::LabeledGraph &m = graph::loadLabeledGraph("M", 6);
    using Row = std::vector<std::string>;
    const auto fsm_rows = bench::runPoints<Row>(
        supports.size(), [&](std::size_t p) {
            const api::Comparison cmp = machine.compare(
                api::RunRequest::fsm(m, supports[p]));
            return Row{std::to_string(supports[p]),
                       std::to_string(cmp.functionalResult),
                       std::to_string(cmp.baseline.cycles),
                       std::to_string(cmp.accelerated.cycles),
                       Table::speedup(cmp.speedup())};
        });
    Table fsm_table({"threshold", "frequent patterns", "cpu cycles",
                     "sparsecore cycles", "speedup"});
    for (const Row &row : fsm_rows)
        fsm_table.addRow(row);
    report.emit("FSM on M", fsm_table);
    std::printf("(* = root-sampled dataset, identical stride on both "
                "substrates)\n");
    return 0;
}
