/**
 * @file
 * Figure 8: SparseCore speedup over the CPU baseline for every GPM
 * application (TC, TM, TS, T, TT, 4C, 5C, 4CS, 5CS) on all ten
 * graphs, plus FSM on mico at thresholds 1K and 2K.
 */

#include <cstdio>

#include "api/machine.hh"
#include "bench_util.hh"
#include "graph/datasets.hh"

int
main()
{
    using namespace sc;
    api::Machine machine;
    bench::printHeader("Figure 8", "speedups over CPU",
                       machine.config());

    for (const gpm::GpmApp app : gpm::allGpmApps()) {
        Table table({"graph", "embeddings", "cpu cycles",
                     "sparsecore cycles", "speedup"});
        for (const auto &key : graph::allGraphKeys()) {
            const graph::CsrGraph &g = graph::loadGraph(key);
            const unsigned stride = bench::autoStride(g, app);
            const api::Comparison cmp =
                machine.compareGpm(app, g, stride);
            table.addRow({key + (stride > 1 ? "*" : ""),
                          std::to_string(cmp.functionalResult),
                          std::to_string(cmp.baseline.cycles),
                          std::to_string(cmp.accelerated.cycles),
                          Table::speedup(cmp.speedup())});
        }
        std::printf("--- %s ---\n", gpm::gpmAppName(app));
        bench::emitTable(table);
    }

    // FSM on mico at the paper's two thresholds.
    std::printf("--- FSM on M ---\n");
    Table fsm_table({"threshold", "frequent patterns", "cpu cycles",
                     "sparsecore cycles", "speedup"});
    const graph::LabeledGraph &m = graph::loadLabeledGraph("M", 6);
    for (const std::uint64_t support : {1000ull, 2000ull}) {
        const api::Comparison cmp = machine.compareFsm(m, support);
        fsm_table.addRow({std::to_string(support),
                          std::to_string(cmp.functionalResult),
                          std::to_string(cmp.baseline.cycles),
                          std::to_string(cmp.accelerated.cycles),
                          Table::speedup(cmp.speedup())});
    }
    bench::emitTable(fsm_table);
    std::printf("(* = root-sampled dataset, identical stride on both "
                "substrates)\n");
    return 0;
}
