/**
 * @file
 * Quickstart: build a graph, count triangles on the CPU baseline and
 * on SparseCore, and print the speedup with its cycle breakdown.
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/example_quickstart
 */

#include <cstdio>

#include "api/machine.hh"
#include "graph/generators.hh"

int
main()
{
    using namespace sc;

    // 1. A synthetic social-network-like graph: 4000 vertices, ~40K
    //    edges, power-law degrees (max ~300).
    const graph::CsrGraph g =
        graph::generateChungLu(4000, 40000, 300, 2.0, /*seed=*/1);
    std::printf("graph: %u vertices, %llu edges, max degree %u\n",
                g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()),
                g.maxDegree());

    // 2. A SparseCore machine with the paper's default configuration
    //    (Table 2: 4 SUs, 16 stream registers, 4KB S-Cache, 16KB
    //    scratchpad).
    api::Machine machine;
    std::printf("%s\n\n", machine.config().describe().c_str());

    // 3. Count triangles on both substrates. The same plan (with
    //    symmetry breaking and nested intersection) runs on each;
    //    only the timing model differs.
    const api::Comparison cmp =
        machine.compare(api::RunRequest::gpm(gpm::GpmApp::T, g));
    std::printf("triangle counting\n%s\n", cmp.str().c_str());

    // 4. The stream ISA also accelerates bounded set operations in
    //    deeper patterns: 4-cliques.
    const api::Comparison c4 =
        machine.compare(api::RunRequest::gpm(gpm::GpmApp::C4, g));
    std::printf("4-clique counting\n%s", c4.str().c_str());
    return 0;
}
