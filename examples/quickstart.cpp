/**
 * @file
 * Quickstart: describe a job as data (api::JobSpec), resolve it
 * against the dataset registry, and compare the CPU baseline with
 * SparseCore — the same admission path the job server and the CLI
 * run.
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/example_quickstart
 */

#include <cstdio>

#include "api/job_queue.hh"

int
main()
{
    using namespace sc;

    // 1. A job is a value: workload + dataset reference + options.
    //    This one counts triangles on the WikiVote-class graph from
    //    the Table-4 registry ("W") and compares both substrates.
    api::JobSpec spec;
    spec.workload = api::RunRequest::Workload::Gpm;
    spec.app = gpm::GpmApp::T;
    spec.dataset = "W";
    spec.mode = api::JobMode::Compare;
    std::printf("job: %s\n\n", spec.toJson().c_str());

    // 2. Admission: resolve the dataset reference to in-memory data.
    //    Bad references come back as structured diagnostics, not
    //    exceptions — try spec.dataset = "nope".
    api::JobResolve resolved = api::resolveJob(spec);
    if (!resolved.ok()) {
        for (const api::JobDiag &e : resolved.errors)
            std::fprintf(stderr, "%s: %s\n", e.field.c_str(),
                         e.message.c_str());
        return 1;
    }
    const api::ResolvedJob &job = *resolved.job;
    std::printf("graph: %u vertices, %llu edges\n",
                job.graph->numVertices(),
                static_cast<unsigned long long>(
                    job.graph->numEdges()));
    std::printf("%s\n\n", job.config.describe().c_str());

    // 3. Execute. The same plan (with symmetry breaking and nested
    //    intersection) runs on each substrate; only the timing model
    //    differs.
    api::Machine machine(job.config);
    const api::Comparison cmp = machine.compare(job.request);
    std::printf("triangle counting\n%s\n", cmp.str().c_str());

    // 4. Jobs are serializable, so they also arrive as JSON — this
    //    is one line of the server's stdin protocol. The stream ISA
    //    accelerates deeper patterns too: 4-cliques.
    api::JobSpecParse parsed = api::parseJobSpec(
        R"({"version":1,"workload":"gpm","app":"4C","dataset":"W"})");
    api::JobResolve c4 = api::resolveJob(*parsed.spec);
    const api::Comparison cmp4 = machine.compare(c4.job->request);
    std::printf("4-clique counting\n%s", cmp4.str().c_str());

    // 5. Batches go through api::JobQueue (futures + shared artifact
    //    store) — see examples/sparsecore_server.cpp.
    return 0;
}
