/**
 * @file
 * Command-line driver over the JobSpec API: every invocation builds
 * (or loads) a serializable job description, resolves it against the
 * dataset registries, and executes it — the same admission path the
 * job server runs.
 *
 * Examples:
 *     example_sparsecore_cli --app T --dataset W --compare
 *     example_sparsecore_cli --workload spmspm --dataset C --json
 *     example_sparsecore_cli --app 4C --dataset M --sus 8 --stride 4
 *     example_sparsecore_cli --app TC --graph-file my_edges.txt
 *     example_sparsecore_cli --job job.json
 *     example_sparsecore_cli --validate-job job.json
 *     example_sparsecore_cli --dump-config
 *     example_sparsecore_cli --app 5C --dataset E --cores 6
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "api/job_queue.hh"
#include "api/parallel.hh"
#include "common/config.hh"

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [job flags | --job FILE | --validate-job FILE | "
        "--dump-config]\n"
        "job flags:\n"
        "  --workload <gpm|fsm|spmspm|ttv|ttm>   (default gpm)\n"
        "  --app <T|TS|TC|TT|TM|4C|4CS|5C|5CS|4M>  gpm pattern\n"
        "  --dataset <KEY>         registry key (Table 4 / Table 5)\n"
        "  --graph-file <path>     gpm: SNAP edge-list file\n"
        "  --min-support N         fsm\n"
        "  --sus N | --bw E | --window N | --no-nested   arch\n"
        "  --priority N            scheduling priority 0..100\n"
        "  --cores N | --stride N | --compare | --json\n"
        "modes:\n"
        "  --job FILE            run a JSON job description\n"
        "  --validate-job FILE   parse + validate, print diagnostics\n"
        "  --dump-config         print the SC_* environment knobs\n",
        argv0);
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        sc::fatal("cannot open %s", path.c_str());
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
printDiags(const std::vector<sc::api::JobDiag> &errors)
{
    for (const sc::api::JobDiag &e : errors)
        std::fprintf(stderr, "  %s: %s\n",
                     e.field.empty() ? "(job)" : e.field.c_str(),
                     e.message.c_str());
}

int
dumpConfig()
{
    std::printf("%-22s %-12s %-8s %s\n", "knob", "value", "source",
                "accepts");
    for (const sc::ConfigKnob &k : sc::describeConfig())
        std::printf("%-22s %-12s %-8s %s\n    %s\n", k.name.c_str(),
                    k.value.c_str(), k.source.c_str(),
                    k.choices.c_str(), k.help.c_str());
    return 0;
}

int
validateJob(const std::string &path)
{
    const sc::api::JobSpecParse parsed =
        sc::api::parseJobSpec(readFile(path));
    if (!parsed.ok()) {
        std::fprintf(stderr, "%s: invalid job description\n",
                     path.c_str());
        printDiags(parsed.errors);
        return 1;
    }
    std::printf("%s: valid (canonical form below)\n%s\n",
                path.c_str(), parsed.spec->toJson().c_str());
    return 0;
}

sc::gpm::GpmApp
parseApp(const std::string &name)
{
    using sc::gpm::GpmApp;
    for (const GpmApp app :
         {GpmApp::T, GpmApp::TS, GpmApp::TC, GpmApp::TT, GpmApp::TM,
          GpmApp::C4, GpmApp::C4S, GpmApp::C5, GpmApp::C5S,
          GpmApp::M4}) {
        if (name == sc::gpm::gpmAppName(app))
            return app;
    }
    sc::fatal("unknown app '%s'", name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace sc;
    setVerbose(false);

    api::JobSpec spec;
    spec.dataset = "W";
    std::string job_file;
    unsigned cores = 1;
    bool compare = false;
    bool dataset_set = false;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--dump-config")
            return dumpConfig();
        else if (arg == "--validate-job")
            return validateJob(next());
        else if (arg == "--job")
            job_file = next();
        else if (arg == "--workload") {
            const std::string w = next();
            if (w == "gpm")
                spec.workload = api::RunRequest::Workload::Gpm;
            else if (w == "fsm")
                spec.workload = api::RunRequest::Workload::Fsm;
            else if (w == "spmspm")
                spec.workload = api::RunRequest::Workload::Spmspm;
            else if (w == "ttv")
                spec.workload = api::RunRequest::Workload::Ttv;
            else if (w == "ttm")
                spec.workload = api::RunRequest::Workload::Ttm;
            else
                usage(argv[0]);
        } else if (arg == "--app")
            spec.app = parseApp(next());
        else if (arg == "--dataset") {
            spec.dataset = next();
            dataset_set = true;
        } else if (arg == "--graph-file") {
            spec.graphFile = next();
            if (!dataset_set)
                spec.dataset.clear();
        } else if (arg == "--min-support")
            spec.minSupport = std::stoull(next());
        else if (arg == "--priority")
            spec.priority = static_cast<int>(std::stoul(next()));
        else if (arg == "--sus")
            spec.numSus = static_cast<unsigned>(std::stoul(next()));
        else if (arg == "--bw")
            spec.bandwidth = static_cast<unsigned>(std::stoul(next()));
        else if (arg == "--window")
            spec.suWindow = static_cast<unsigned>(std::stoul(next()));
        else if (arg == "--no-nested")
            spec.nested = false;
        else if (arg == "--cores")
            cores = static_cast<unsigned>(std::stoul(next()));
        else if (arg == "--stride") {
            const auto stride =
                static_cast<unsigned>(std::stoul(next()));
            spec.options.rootStride = stride;
            spec.options.stride = stride;
        } else if (arg == "--compare")
            compare = true;
        else if (arg == "--json")
            json = true;
        else
            usage(argv[0]);
    }

    try {
        if (!job_file.empty()) {
            api::JobSpecParse parsed =
                api::parseJobSpec(readFile(job_file));
            if (!parsed.ok()) {
                std::fprintf(stderr,
                             "%s: invalid job description\n",
                             job_file.c_str());
                printDiags(parsed.errors);
                return 1;
            }
            spec = std::move(*parsed.spec);
        } else {
            // Flag-built specs default to mode=run on SparseCore;
            // --compare flips them (a --job file says it itself).
            spec.mode =
                compare ? api::JobMode::Compare : api::JobMode::Run;
            spec.substrate = api::Substrate::SparseCore;
        }

        api::JobResolve resolved = api::resolveJob(spec);
        if (!resolved.ok()) {
            std::fprintf(stderr, "invalid job:\n");
            printDiags(resolved.errors);
            return 1;
        }
        api::ResolvedJob &job = *resolved.job;

        if (job.graph)
            std::printf("graph %s: %u vertices, %llu edges, max "
                        "degree %u\n",
                        job.graph->name().c_str(),
                        job.graph->numVertices(),
                        static_cast<unsigned long long>(
                            job.graph->numEdges()),
                        job.graph->maxDegree());
        std::printf("%s\n", job.config.describe().c_str());

        // Multi-core mining stays a CLI-level mode: the parallel API
        // partitions roots across simulated cores, which the
        // single-job JobSpec schema does not model (yet).
        if (cores > 1) {
            if (spec.workload != api::RunRequest::Workload::Gpm ||
                !job.graph)
                fatal("--cores needs a gpm job on a graph");
            const auto par = api::mineParallelSparseCore(
                spec.app, *job.graph, cores, job.config,
                spec.options.rootStride);
            std::printf("%s x%u cores: %llu embeddings, %llu cycles "
                        "(balance %.2f)\n",
                        gpm::gpmAppName(spec.app), cores,
                        static_cast<unsigned long long>(
                            par.embeddings),
                        static_cast<unsigned long long>(par.cycles),
                        par.balance());
            if (compare) {
                const auto cpu_par = api::mineParallelCpu(
                    spec.app, *job.graph, cores, job.config,
                    spec.options.rootStride);
                std::printf("cpu x%u cores: %llu cycles -> speedup "
                            "%.2fx\n",
                            cores,
                            static_cast<unsigned long long>(
                                cpu_par.cycles),
                            static_cast<double>(cpu_par.cycles) /
                                static_cast<double>(par.cycles));
            }
            return 0;
        }

        api::Machine machine(job.config);
        if (job.spec.mode == api::JobMode::Compare) {
            const api::Comparison cmp = machine.compare(job.request);
            if (json)
                std::printf("%s\n",
                            api::jsonValue(cmp).dump().c_str());
            else
                std::printf("%s\n", cmp.str().c_str());
        } else {
            const api::RunResult res =
                machine.run(job.request, job.spec.substrate);
            if (json) {
                std::printf("%s\n",
                            api::jsonValue(res).dump().c_str());
            } else {
                std::printf(
                    "%s: %llu result, %llu cycles on %s\n",
                    workloadName(job.spec.workload),
                    static_cast<unsigned long long>(
                        res.functionalResult),
                    static_cast<unsigned long long>(res.cycles),
                    substrateName(job.spec.substrate));
                std::printf("breakdown: %s\n",
                            api::breakdownStr(res.breakdown).c_str());
            }
        }
    } catch (const SimError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    return 0;
}
