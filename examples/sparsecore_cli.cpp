/**
 * @file
 * Command-line driver: run any GPM application on any dataset (the
 * Table-4 registry, or a real SNAP edge-list file) under any
 * SparseCore configuration, optionally comparing against the CPU
 * baseline or running multi-core.
 *
 * Examples:
 *     example_sparsecore_cli --app T --dataset W --compare
 *     example_sparsecore_cli --app 4C --dataset M --sus 8 --stride 4
 *     example_sparsecore_cli --app TC --graph-file my_edges.txt
 *     example_sparsecore_cli --app 5C --dataset E --cores 6
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "api/machine.hh"
#include "api/parallel.hh"
#include "graph/datasets.hh"
#include "graph/io.hh"

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::printf(
        "usage: %s --app <T|TS|TC|TT|TM|4C|4CS|5C|5CS|4M>\n"
        "          [--dataset <C|E|B|G|F|W|M|Y|P|L> | --graph-file "
        "<path>]\n"
        "          [--sus N] [--bw ELEM/CYC] [--window N]\n"
        "          [--no-nested] [--cores N] [--stride N] "
        "[--compare]\n",
        argv0);
    std::exit(2);
}

sc::gpm::GpmApp
parseApp(const std::string &name)
{
    using sc::gpm::GpmApp;
    for (const GpmApp app :
         {GpmApp::T, GpmApp::TS, GpmApp::TC, GpmApp::TT, GpmApp::TM,
          GpmApp::C4, GpmApp::C4S, GpmApp::C5, GpmApp::C5S,
          GpmApp::M4}) {
        if (name == sc::gpm::gpmAppName(app))
            return app;
    }
    sc::fatal("unknown app '%s'", name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace sc;
    setVerbose(false);

    std::string app_name = "T";
    std::string dataset = "W";
    std::string graph_file;
    arch::SparseCoreConfig config;
    unsigned cores = 1;
    unsigned stride = 1;
    bool compare = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--app")
            app_name = next();
        else if (arg == "--dataset")
            dataset = next();
        else if (arg == "--graph-file")
            graph_file = next();
        else if (arg == "--sus")
            config.numSus = std::stoul(next());
        else if (arg == "--bw")
            config.aggregateBandwidth = std::stoul(next());
        else if (arg == "--window")
            config.suWindow = std::stoul(next());
        else if (arg == "--no-nested")
            config.nestedIntersection = false;
        else if (arg == "--cores")
            cores = std::stoul(next());
        else if (arg == "--stride")
            stride = std::stoul(next());
        else if (arg == "--compare")
            compare = true;
        else
            usage(argv[0]);
    }

    try {
        const gpm::GpmApp app = parseApp(app_name);
        graph::CsrGraph loaded;
        const graph::CsrGraph *g;
        if (!graph_file.empty()) {
            loaded = graph::loadEdgeListFile(graph_file);
            g = &loaded;
        } else {
            g = &graph::loadGraph(dataset);
        }
        std::printf("graph %s: %u vertices, %llu edges, max degree "
                    "%u\n",
                    g->name().c_str(), g->numVertices(),
                    static_cast<unsigned long long>(g->numEdges()),
                    g->maxDegree());
        std::printf("%s\n", config.describe().c_str());

        if (cores > 1) {
            const auto par = api::mineParallelSparseCore(
                app, *g, cores, config, stride);
            std::printf("%s x%u cores: %llu embeddings, %llu cycles "
                        "(balance %.2f)\n",
                        app_name.c_str(), cores,
                        static_cast<unsigned long long>(
                            par.embeddings),
                        static_cast<unsigned long long>(par.cycles),
                        par.balance());
            if (compare) {
                const auto cpu_par = api::mineParallelCpu(
                    app, *g, cores, config, stride);
                std::printf("cpu x%u cores: %llu cycles -> speedup "
                            "%.2fx\n",
                            cores,
                            static_cast<unsigned long long>(
                                cpu_par.cycles),
                            static_cast<double>(cpu_par.cycles) /
                                static_cast<double>(par.cycles));
            }
            return 0;
        }

        api::Machine machine(config);
        api::RunOptions options;
        options.rootStride = stride;
        const auto req = api::RunRequest::gpm(app, *g, options);
        if (compare) {
            const auto cmp = machine.compare(req);
            std::printf("%s\n", cmp.str().c_str());
        } else {
            const auto res =
                machine.run(req, api::Substrate::SparseCore);
            std::printf("%s: %llu embeddings, %llu cycles\n",
                        app_name.c_str(),
                        static_cast<unsigned long long>(
                            res.functionalResult),
                        static_cast<unsigned long long>(res.cycles));
            std::printf("breakdown: %s\n",
                        api::breakdownStr(res.breakdown).c_str());
        }
    } catch (const SimError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    return 0;
}
