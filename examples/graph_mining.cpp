/**
 * @file
 * Graph pattern mining scenario: run the full Table-3 application set
 * on a wiki-vote-like graph, showing per-app speedups, the nested-
 * intersection gain (T vs TS, 4C vs 4CS), and cycle breakdowns — the
 * workloads the paper's introduction motivates.
 */

#include <cstdio>

#include "api/machine.hh"
#include "backend/functional_backend.hh"
#include "common/table.hh"
#include "graph/datasets.hh"
#include "gpm/executor.hh"

namespace {

/** Deterministic root sampling keeping each app under ~10M set-op
 *  elements (same stride on both substrates; see EXPERIMENTS.md). */
unsigned
strideFor(const sc::graph::CsrGraph &g, sc::gpm::GpmApp app)
{
    sc::backend::FunctionalBackend probe_be;
    sc::gpm::PlanExecutor probe(g, probe_be);
    const unsigned probe_stride = 64;
    probe.setRootStride(probe_stride);
    probe.runMany(sc::gpm::gpmAppPlans(app));
    const double work =
        static_cast<double>(
            probe_be.stats().get("setOpElements") +
            probe_be.stats().get("nestedElements")) *
        probe_stride;
    return work <= 10e6 ? 1
                        : static_cast<unsigned>(work / 10e6 + 1.0);
}

} // namespace

int
main()
{
    using namespace sc;
    setVerbose(false);

    const graph::CsrGraph &g = graph::loadGraph("W"); // wiki-vote
    std::printf("dataset W (%s): %u vertices, %llu edges, "
                "max degree %u\n\n",
                graph::graphDataset("W").name.c_str(), g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()),
                g.maxDegree());

    api::Machine machine;
    Table table({"app", "embeddings", "cpu Mcycles", "sc Mcycles",
                 "speedup", "sparsecore breakdown"});
    for (const gpm::GpmApp app : gpm::allGpmApps()) {
        const unsigned stride = strideFor(g, app);
        api::RunOptions options;
        options.rootStride = stride;
        const api::Comparison cmp =
            machine.compare(api::RunRequest::gpm(app, g, options));
        table.addRow(
            {std::string(gpm::gpmAppName(app)) +
                 (stride > 1 ? "*" : ""),
             std::to_string(cmp.functionalResult),
             Table::num(cmp.baseline.cycles / 1e6, 1),
             Table::num(cmp.accelerated.cycles / 1e6, 1),
             Table::speedup(cmp.speedup()),
             api::breakdownStr(cmp.accelerated.breakdown)});
    }
    std::printf("%s\n", table.str().c_str());

    // The nested-intersection instruction's contribution (§6.3.2).
    const auto t =
        machine.compare(api::RunRequest::gpm(gpm::GpmApp::T, g));
    const auto ts =
        machine.compare(api::RunRequest::gpm(gpm::GpmApp::TS, g));
    std::printf("(* = root-sampled app)\n");
    std::printf("nested intersection gain on T: %.2fx\n",
                static_cast<double>(ts.accelerated.cycles) /
                    static_cast<double>(t.accelerated.cycles));

    // FSM with labels.
    const graph::LabeledGraph &lw = graph::loadLabeledGraph("W", 6);
    const auto fsm = machine.compare(api::RunRequest::fsm(lw, 500));
    std::printf("\nFSM (support 500): %llu frequent patterns, "
                "speedup %.2fx\n",
                static_cast<unsigned long long>(fsm.functionalResult),
                fsm.speedup());
    return 0;
}
