/**
 * @file
 * Stream ISA demo: hand-written assembly (Table 1 instructions plus
 * the host scalar subset) executed on the functional interpreter.
 *
 * Walks through the paper's own examples: the inner product of
 * Fig. 4(a/b) with S_VREAD/S_VINTER, bounded intersection (Fig. 3b),
 * and triangle counting with S_LD_GFR + S_NESTINTER (Fig. 3a).
 */

#include <cstdio>
#include <vector>

#include "graph/generators.hh"
#include "isa/assembler.hh"
#include "isa/interpreter.hh"

int
main()
{
    using namespace sc;
    using namespace sc::isa;

    // ---------------- 1. inner product (Fig. 4b) ----------------
    const std::vector<Key> ak = {1, 3, 7};
    const std::vector<Value> av = {45, 21, 13};
    const std::vector<Key> bk = {2, 5, 7};
    const std::vector<Value> bv = {14, 36, 2};

    MemoryImage mem;
    mem.addSegment(0x1000, ak.data(), ak.size() * sizeof(Key));
    mem.addSegment(0x2000, av.data(), av.size() * sizeof(Value));
    mem.addSegment(0x3000, bk.data(), bk.size() * sizeof(Key));
    mem.addSegment(0x4000, bv.data(), bv.size() * sizeof(Value));

    const char *inner_src = R"(
        ; stream 1 = [(1,45),(3,21),(7,13)]
        LI r8, 0x1000     ; key address
        LI r9, 3          ; length
        LI r10, 1         ; stream id
        LI r11, 0x2000    ; value address
        LI r12, 0         ; priority
        S_VREAD r8, r9, r10, r11, r12
        ; stream 2 = [(2,14),(5,36),(7,2)]
        LI r8, 0x3000
        LI r11, 0x4000
        LI r13, 2
        S_VREAD r8, r9, r13, r11, r12
        S_VINTER r10, r13, r14, MAC
        S_FREE r10
        S_FREE r13
        HALT
    )";
    Interpreter inner(mem);
    inner.run(assemble(inner_src));
    std::printf("S_VINTER inner product (paper's example): %.1f "
                "(expected 26.0 = 13*2 at key 7)\n",
                inner.gprAsDouble(14));

    // ---------------- 2. bounded intersection (Fig. 3b) ---------
    const std::vector<Key> n0 = {1, 4, 6, 9, 12};
    const std::vector<Key> n1 = {4, 6, 9, 12};
    MemoryImage mem2;
    mem2.addSegment(0x1000, n0.data(), n0.size() * sizeof(Key));
    mem2.addSegment(0x2000, n1.data(), n1.size() * sizeof(Key));
    Interpreter bounded(mem2);
    bounded.run(assemble(R"(
        LI r1, 0x1000
        LI r2, 5
        LI r3, 1
        LI r4, 0
        S_READ r1, r2, r3, r4
        LI r5, 0x2000
        LI r6, 4
        LI r7, 2
        S_READ r5, r6, r7, r4
        LI r10, 9          ; upper bound v0 = 9
        S_INTER r3, r7, r9, r10
        S_FREE r3
        S_FREE r7
        LI r11, 0
        S_FETCH r9, r11, r12
        LI r11, 1
        S_FETCH r9, r11, r13
        LI r11, 2
        S_FETCH r9, r11, r14  ; EOS: bound cut off 9 and 12
        HALT
    )"));
    std::printf("BoundedIntersect(n0, n1, 9) = {%llu, %llu}, then "
                "EOS=0x%llx\n",
                static_cast<unsigned long long>(bounded.gpr(12)),
                static_cast<unsigned long long>(bounded.gpr(13)),
                static_cast<unsigned long long>(bounded.gpr(14)));

    // ------- 3. triangle counting with S_NESTINTER (Fig. 3a) -----
    const auto g =
        graph::generateChungLu(1000, 8000, 120, 2.0, 7, "demo");
    MemoryImage mem3;
    mem3.addSegment(g.vertexArrayBase(), g.offsets().data(),
                    g.offsets().size() * sizeof(std::uint64_t));
    mem3.addSegment(g.edgeArrayBase(), g.edges().data(),
                    g.edges().size() * sizeof(VertexId));
    std::vector<std::uint32_t> above(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        above[v] = g.aboveOffset(v);
    const Addr above_base = 0x7000000000ull;
    mem3.addSegment(above_base, above.data(),
                    above.size() * sizeof(std::uint32_t));

    // The per-vertex loop is host code; the kernel is 4 instructions.
    const isa::Program kernel = assemble(R"(
        S_LD_GFR r20, r21, r22
        S_READ r1, r2, r3, r4    ; stream = N(v) below v
        S_NESTINTER r3, r5       ; sum of bounded intersections
        S_FREE r3
        HALT
    )");
    Interpreter interp(mem3);
    std::uint64_t triangles = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        interp.setGpr(1, g.edgeListAddr(v));
        interp.setGpr(2, g.aboveOffset(v));
        interp.setGpr(3, 1);
        interp.setGpr(4, 0);
        interp.setGpr(20, g.vertexArrayBase());
        interp.setGpr(21, g.edgeArrayBase());
        interp.setGpr(22, above_base);
        interp.run(kernel);
        triangles += interp.gpr(5);
    }
    std::printf("S_NESTINTER triangle count on a %u-vertex graph: "
                "%llu\n",
                g.numVertices(),
                static_cast<unsigned long long>(triangles));
    std::printf("dynamic stream instructions executed: %llu\n",
                static_cast<unsigned long long>(
                    interp.streamInstructions()));
    return 0;
}
