/**
 * @file
 * Sparse tensor scenario: one architecture, three spmspm dataflows.
 *
 * The paper's core flexibility claim: prior accelerators hard-wire a
 * dataflow, while SparseCore picks inner-product, outer-product or
 * Gustavson in software (the kernel-builder parses the TACO-style
 * expression; the algorithm is a runtime choice). This example
 * multiplies a Circuit204-like matrix by itself under all three and
 * validates every result against the dense reference.
 */

#include <cstdio>

#include "api/machine.hh"
#include "common/table.hh"
#include "kernels/kernel_builder.hh"
#include "tensor/reference_kernels.hh"
#include "tensor/tensor_datasets.hh"

int
main()
{
    using namespace sc;
    using kernels::SpmspmAlgorithm;
    setVerbose(false);

    // The user-facing interface is the expression (§5.3).
    const auto kernel =
        kernels::parseKernel("C(i,j) = A(i,k) * B(k,j)");
    std::printf("expression: C(i,j) = A(i,k) * B(k,j)  "
                "[contraction over '%s']\n",
                kernel.contractedIndex.c_str());

    const tensor::SparseMatrix &a = tensor::loadMatrix("C");
    std::printf("matrix %s: %ux%u, %llu nnz (density %.2f%%)\n\n",
                a.name().c_str(), a.rows(), a.cols(),
                static_cast<unsigned long long>(a.nnz()),
                100.0 * a.density());

    const tensor::SparseMatrix reference =
        tensor::referenceSpmspm(a, a);

    api::Machine machine;
    Table table({"dataflow", "cpu Mcycles", "sc Mcycles", "speedup",
                 "max |err|"});
    for (const auto algorithm :
         {SpmspmAlgorithm::Inner, SpmspmAlgorithm::Outer,
          SpmspmAlgorithm::Gustavson}) {
        tensor::SparseMatrix result;
        const auto req =
            api::RunRequest::spmspm(a, a, algorithm, {}, &result);
        const auto sc_run =
            machine.run(req, api::Substrate::SparseCore);
        const auto cpu_run = machine.run(req, api::Substrate::Cpu);
        table.addRow(
            {kernels::spmspmAlgorithmName(algorithm),
             Table::num(cpu_run.cycles / 1e6, 2),
             Table::num(sc_run.cycles / 1e6, 2),
             Table::speedup(static_cast<double>(cpu_run.cycles) /
                            static_cast<double>(sc_run.cycles)),
             Table::num(result.maxAbsDiff(reference), 12)});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nAll three dataflows run on the same hardware; the "
                "choice is a software decision.\n");
    return 0;
}
