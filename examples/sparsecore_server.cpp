/**
 * @file
 * Simulation-as-a-service front end: JSON job descriptions in, JSON
 * reports out.
 *
 * Reads one JobSpec per line from stdin (jsonl; blank lines and
 * #-comments skipped), submits the batch to an api::JobQueue, and
 * after EOF prints one JSON report per job on stdout in submission
 * order. Jobs sharing a dataset share the process-wide ArtifactStore:
 * the first one captures the trace and compiles the bytecode, the
 * rest replay warm artifacts — queue stats (--stats) expose the hit
 * counts. A malformed job produces a report with structured errors;
 * it never aborts the batch (exit status is 1 if any job failed,
 * 0 otherwise).
 *
 * Flags:
 *   --jobs-threads N  queue worker threads (default 0 = the shared
 *                     global pool; 1 = inline, in submission order)
 *   --sched P         scheduling policy: fifo | affinity (default:
 *                     SC_JOB_SCHED, which defaults to affinity)
 *   --sequential      bypass the queue: resolve + run each job
 *                     inline with Machine — the bit-identity
 *                     reference the check.sh smoke leg diffs against
 *   --no-timing       omit wall-clock and cache-hit fields from the
 *                     reports (byte-diffable across queue widths)
 *   --stats           append one final jsonl line {"stats": ...}
 *
 * Example session:
 *   $ printf '%s\n' \
 *     '{"version":1,"workload":"gpm","app":"T","dataset":"W"}' \
 *     '{"version":1,"workload":"spmspm","dataset":"C"}' \
 *     | example_sparsecore_server --stats
 */

#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "api/job_queue.hh"
#include "common/logging.hh"

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--jobs-threads N] [--sched "
                 "fifo|affinity] [--sequential] "
                 "[--no-timing] [--stats]\n"
                 "reads one JSON job per line on stdin, writes one "
                 "JSON report per job on stdout\n",
                 argv0);
    std::exit(2);
}

/** The --sequential reference path: admission + execution inline,
 *  no queue. Reports are built the same way JobQueue builds them, so
 *  --no-timing output is byte-identical when the jobs are. */
sc::api::JobReport
runSequential(const std::string &line)
{
    using namespace sc;
    api::JobReport report;
    api::JobSpecParse parsed = api::parseJobSpec(line);
    if (!parsed.ok()) {
        report.errors = std::move(parsed.errors);
        return report;
    }
    report.id = parsed.spec->id;
    report.spec = *parsed.spec;
    api::JobResolve resolved = api::resolveJob(*parsed.spec);
    if (!resolved.ok()) {
        report.errors = std::move(resolved.errors);
        return report;
    }
    try {
        api::Machine machine(resolved.job->config);
        if (resolved.job->spec.mode == api::JobMode::Run)
            report.run = machine.run(resolved.job->request,
                                     resolved.job->spec.substrate);
        else
            report.comparison =
                machine.compare(resolved.job->request);
        report.ok = true;
    } catch (const std::exception &e) {
        report.errors.push_back({"", e.what()});
    }
    return report;
}

/** Stdin lines that are jobs (blank lines and #-comments skipped). */
std::vector<std::string>
readJobLines()
{
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(std::cin, line))
        if (!line.empty() && line[0] != '#')
            lines.push_back(line);
    return lines;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace sc;
    setVerbose(false);

    unsigned jobs_threads = 0;
    std::optional<api::SchedPolicy> policy;
    bool sequential = false;
    bool timing = true;
    bool stats = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs-threads") {
            if (i + 1 >= argc)
                usage(argv[0]);
            jobs_threads =
                static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--sched") {
            if (i + 1 >= argc)
                usage(argv[0]);
            policy = api::parseSchedPolicy(argv[++i]);
            if (!policy)
                usage(argv[0]);
        } else if (arg == "--sequential") {
            sequential = true;
        } else if (arg == "--no-timing") {
            timing = false;
        } else if (arg == "--stats") {
            stats = true;
        } else {
            usage(argv[0]);
        }
    }

    const std::vector<std::string> lines = readJobLines();
    std::vector<api::JobReport> reports;
    reports.reserve(lines.size());
    std::optional<JsonValue> stats_value;

    if (sequential) {
        for (const std::string &line : lines)
            reports.push_back(runSequential(line));
        if (stats) {
            // No queue in this mode; report the store counters only.
            const api::ArtifactStoreStats s =
                api::ArtifactStore::global().stats();
            JsonValue store = JsonValue::object();
            store.set("trace_hits", JsonValue::number(s.traces.hits));
            store.set("trace_misses",
                      JsonValue::number(s.traces.misses));
            store.set("program_hits",
                      JsonValue::number(s.programs.hits));
            store.set("program_misses",
                      JsonValue::number(s.programs.misses));
            JsonValue as = JsonValue::object();
            as.set("artifact_store", std::move(store));
            stats_value = std::move(as);
        }
    } else {
        api::JobQueue queue(jobs_threads, policy);
        std::vector<std::future<api::JobReport>> futures;
        futures.reserve(lines.size());
        for (const std::string &line : lines)
            futures.push_back(queue.submitJson(line));
        for (auto &f : futures)
            reports.push_back(f.get());
        if (stats)
            stats_value = queue.stats().toJsonValue();
    }

    bool any_failed = false;
    for (const api::JobReport &r : reports) {
        any_failed |= !r.ok;
        std::printf("%s\n", r.toJsonValue(timing).dump().c_str());
    }
    if (stats_value) {
        JsonValue out = JsonValue::object();
        out.set("stats", std::move(*stats_value));
        std::printf("%s\n", out.dump().c_str());
    }
    return any_failed ? 1 : 0;
}
