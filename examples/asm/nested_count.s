; Triangle counting step: nested intersection of a vertex's neighbor
; list against each neighbor's own list (S_NESTINTER, §3.2). The
; S_LD_GFR must dominate the S_NESTINTER — the verifier checks this.
LI r1, 4096         ; CSR vertex array base
LI r2, 8192         ; CSR edge array base
LI r3, 12288        ; CSR offset array base
S_LD_GFR r1, r2, r3
LI r4, 8192         ; neighbor list address
LI r5, 16           ; neighbor list length
LI r6, 1            ; sid 1
S_READ r4, r5, r6, r0
S_NESTINTER r6, r7  ; r7 = total nested intersection count
S_FREE r6
HALT
