; Sum a stream's keys with a scalar S_FETCH loop: stream-ISA / scalar
; interplay with a backward branch. The verifier's CFG pass walks the
; loop to a fixpoint; the program is verifier-clean.
LI r1, 4096         ; stream base address
LI r2, 8            ; stream length
LI r3, 1            ; sid 1
S_READ r1, r2, r3, r0
LI r4, 0            ; index
LI r5, 0            ; accumulator
loop:
S_FETCH r3, r4, r6  ; r6 = key[index]
ADD r5, r5, r6      ; accumulate
ADDI r4, r4, 1
BLT r4, r2, loop
S_FREE r3
HALT
