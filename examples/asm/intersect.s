; Intersect two key streams and fetch the first result key.
; Exercises the S_READ -> S_INTER -> S_FETCH -> S_FREE lifecycle;
; verifier-clean (scripts/check.sh runs scverify over this file).
LI r1, 4096         ; stream A base address
LI r2, 8            ; stream A length
LI r3, 1            ; sid 1
S_READ r1, r2, r3, r0
LI r4, 8192         ; stream B base address
LI r5, 8            ; stream B length
LI r6, 2            ; sid 2
S_READ r4, r5, r6, r0
LI r7, 3            ; output sid
S_INTER r3, r6, r7, r0  ; sid3 = A n B (r0 = no bound)
LI r8, 0
S_FETCH r7, r8, r9  ; r9 = first key of the intersection (or EOS)
S_FREE r3
S_FREE r6
S_FREE r7
HALT
