; Sparse dot product: two (key,value) streams, S_VINTER with MAC.
; S_VREAD (not S_READ) gives both operands value ancestry, which the
; verifier's value-op-on-key-stream rule demands.
LI r1, 4096         ; A key base
LI r2, 8            ; length
LI r3, 1            ; sid 1
LI r4, 16384        ; A value base
S_VREAD r1, r2, r3, r4, r0
LI r5, 8192         ; B key base
LI r6, 2            ; sid 2
LI r7, 24576        ; B value base
S_VREAD r5, r2, r6, r7, r0
S_VINTER r3, r6, r8, MAC ; r8 = sum of A[k]*B[k] over shared keys
S_FREE r3
S_FREE r6
HALT
